package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Result is one machine-readable measurement of an experiment: a named
// configuration with its throughput and latency numbers. Experiments attach
// Results alongside their human-readable rows so the perf trajectory can be
// tracked across PRs (BENCH_<exp>.json files at the repo root).
type Result struct {
	// Name identifies the configuration, e.g. "compressible/gzip".
	Name string `json:"name"`
	// RecordsPerSec is end-to-end record throughput.
	RecordsPerSec float64 `json:"records_per_sec"`
	// MBPerSec is logical (uncompressed payload) throughput.
	MBPerSec float64 `json:"mb_per_sec"`
	// P50Ms / P99Ms are latency quantiles in milliseconds (0 when the
	// experiment has no latency dimension).
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// Extra carries experiment-specific dimensions (bytes on wire,
	// compression ratios, ...).
	Extra map[string]string `json:"extra,omitempty"`
}

// jsonTable is the serialised form of a Table: identity, the structured
// Results, and the rendered rows so even experiments without Results stay
// machine-readable.
type jsonTable struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Claim string `json:"claim"`
	// Scale records whether the run was "quick" (CI-sized) or "full":
	// only full-scale results are comparable to the committed baselines.
	Scale   string     `json:"scale"`
	Results []Result   `json:"results,omitempty"`
	Headers []string   `json:"headers,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Notes   []string   `json:"notes,omitempty"`
}

// WriteJSON writes the table as BENCH_<ID>.json in dir (atomic rename so a
// crashed run never leaves a half-written result). The scale the run used
// is recorded so quick-scale numbers can never masquerade as a full-scale
// baseline.
func WriteJSON(dir string, t Table, scale Scale) (string, error) {
	scaleName := "full"
	if scale.Quick {
		scaleName = "quick"
	}
	data, err := json.MarshalIndent(jsonTable{
		ID:      t.ID,
		Title:   t.Title,
		Claim:   t.Claim,
		Scale:   scaleName,
		Results: t.Results,
		Headers: t.Headers,
		Rows:    t.Rows,
		Notes:   t.Notes,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", t.ID))
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return path, nil
}

// writeFileSync writes data to path and fsyncs it so the rename that
// follows publishes a fully-persisted results file.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package bench

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/storage/cache"
	"repro/internal/storage/log"
)

// e20Barrier models a 2015-era commodity disk's write-barrier cost: an
// fdatasync is a real fsync (so the OS-visible semantics hold) plus a fixed
// latency, roughly one rotation of a 7200rpm spindle with its cache flush.
// On tmpfs-backed CI the real fsync is near-free, which would let a
// per-batch-fsync policy look as fast as group commit; the modeled barrier
// restores the cost structure the durability policies exist to amortize.
const e20Barrier = 5 * time.Millisecond

// E20Durability measures the storage durability spectrum end to end
// (§3.1/§4.1's "log is the system of record" needs an fsync discipline):
//
//   - Produce MB/s under each fsync policy, 12 concurrent acks=1 producers
//     on one partition, with the modeled disk barrier attached. Per-batch
//     fsync pays one barrier per append inside the log lock; group commit
//     amortizes one barrier across every batch that arrives in its window,
//     deferring the producers' acks until their covering fdatasync lands.
//     The reproduction target: group commit within reach of the unsynced
//     baseline, and >= 5x over per-batch fsync.
//
//   - Fetch allocations per consumed record, zero-copy splice vs the legacy
//     buffered re-encode, under the page-cache model. The spliced path
//     resolves a fetch to a raw segment-file range (sendfile on Linux), so
//     the broker never materializes the batch bytes: allocs/op must drop.
func E20Durability(scale Scale) Table {
	t := Table{
		ID:      "E20",
		Title:   "WAL durability policies and zero-copy fetch: produce MB/s per fsync policy; fetch allocs per record, splice vs re-encode",
		Claim:   "§3.1/§4.1: a durable log need not serialize on the disk barrier — group commit amortizes one fdatasync across all in-flight produces; and sealed batches mean stored bytes are wire bytes, so fetches splice straight from the segment file",
		Headers: []string{"configuration", "records", "MB/s", "krec/s", "fsyncs", "alloc B/rec"},
	}

	const (
		valueBytes = 1 << 10
		producers  = 12
	)
	n := scale.pick(1800, 24000)

	type policyCase struct {
		name string
		d    log.Durability
	}
	var syncCount atomic.Int64
	modeledSync := func(f *os.File) error {
		syncCount.Add(1)
		if err := f.Sync(); err != nil {
			return err
		}
		time.Sleep(e20Barrier)
		return nil
	}
	cases := []policyCase{
		{"produce/no-fsync", log.Durability{Policy: log.SyncNone, Syncer: modeledSync}},
		{"produce/interval-50ms", log.Durability{Policy: log.SyncInterval, Interval: 50 * time.Millisecond, Syncer: modeledSync}},
		{"produce/batch-fsync", log.Durability{Policy: log.SyncBatch, Syncer: modeledSync}},
		{"produce/group-commit-2ms", log.Durability{Policy: log.SyncGroup, GroupWindow: 2 * time.Millisecond, Syncer: modeledSync}},
	}

	pageCache := func(c *core.Config) {
		c.PageCache = &cache.Config{
			PageSize:           4096,
			CapacityBytes:      64 << 20,
			DiskPenaltyPerPage: 150 * time.Microsecond,
			FlushDelay:         10 * time.Millisecond,
		}
	}

	mbps := make(map[string]float64, len(cases))
	for _, pc := range cases {
		syncCount.Store(0)
		s, err := newStack(1, func(c *core.Config) {
			pageCache(c)
			c.Durability = pc.d
		})
		if err != nil {
			t.Notes = append(t.Notes, "failed: "+err.Error())
			return t
		}
		topic := "e20-produce"
		if err := s.CreateFeed(topic, 1, 1); err != nil {
			s.Shutdown()
			t.Notes = append(t.Notes, "failed: "+err.Error())
			return t
		}
		value := make([]byte, valueBytes)
		for i := range value {
			value[i] = byte('a' + i%26)
		}
		perProducer := n / producers
		var wg sync.WaitGroup
		var sendErrs atomic.Int64
		start := time.Now()
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				prod := s.NewProducer(client.ProducerConfig{Acks: 1, BatchBytes: 128 << 10})
				defer prod.Close()
				for i := 0; i < perProducer; i++ {
					if err := prod.Send(client.Message{Topic: topic, Value: value}); err != nil {
						sendErrs.Add(1)
						return
					}
				}
				if err := prod.Flush(); err != nil {
					sendErrs.Add(1)
				}
			}()
		}
		wg.Wait()
		dur := time.Since(start)
		s.Shutdown()
		if e := sendErrs.Load(); e > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: %d producer errors", pc.name, e))
		}
		produced := int64(perProducer*producers) * valueBytes
		rate := float64(produced) / dur.Seconds() / (1 << 20)
		mbps[pc.name] = rate
		syncs := syncCount.Load()
		t.Rows = append(t.Rows, []string{
			pc.name, fmt.Sprint(perProducer * producers), fmt.Sprintf("%.1f", rate),
			fmt.Sprintf("%.1f", float64(perProducer*producers)/dur.Seconds()/1e3),
			fmt.Sprint(syncs), "-",
		})
		t.Results = append(t.Results, Result{
			Name:          pc.name,
			RecordsPerSec: float64(perProducer*producers) / dur.Seconds(),
			MBPerSec:      rate,
			Extra: map[string]string{
				"fsyncs":             fmt.Sprint(syncs),
				"fsync_barrier_ms":   fmt.Sprintf("%.0f", float64(e20Barrier)/float64(time.Millisecond)),
				"acked_records":      fmt.Sprint(perProducer * producers),
				"concurrent_senders": fmt.Sprint(producers),
			},
		})
	}
	if batch, group := mbps["produce/batch-fsync"], mbps["produce/group-commit-2ms"]; batch > 0 {
		t.Results[len(t.Results)-1].Extra["mbps_vs_batch_fsync"] = fmt.Sprintf("%.1f", group/batch)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"group commit amortization: %.1fx the per-batch-fsync produce rate (target >= 5x)", group/batch))
	}

	// Fetch side: allocations per consumed record, zero-copy vs buffered.
	// Mallocs are counted process-wide between two GC fences; the workload
	// (one consumer draining the feed) dominates, and both modes run the
	// identical workload, so the delta isolates the serving path.
	fetchN := scale.pick(4000, 30000)
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"fetch/zero-copy-splice", false},
		{"fetch/buffered-reencode", true},
	} {
		s, err := newStack(1, func(c *core.Config) {
			pageCache(c)
			c.DisableZeroCopyFetch = mode.disable
		})
		if err != nil {
			t.Notes = append(t.Notes, "failed: "+err.Error())
			return t
		}
		topic := "e20-fetch"
		if err := s.CreateFeed(topic, 1, 1); err != nil {
			s.Shutdown()
			t.Notes = append(t.Notes, "failed: "+err.Error())
			return t
		}
		if err := produceValues(s, topic, fetchN, valueBytes, 0, 1); err != nil {
			s.Shutdown()
			t.Notes = append(t.Notes, "failed: "+err.Error())
			return t
		}
		// Warm pass: connection setup, metadata, page-cache population.
		if got, _ := consumeCount(s, topic, 1, fetchN, 60*time.Second); got < fetchN {
			s.Shutdown()
			t.Notes = append(t.Notes, fmt.Sprintf("%s: warm pass consumed %d/%d", mode.name, got, fetchN))
			return t
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		got, err := consumeCount(s, topic, 1, fetchN, 60*time.Second)
		dur := time.Since(start)
		runtime.ReadMemStats(&m1)
		s.Shutdown()
		if err != nil || got < fetchN {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: consumed %d/%d (%v)", mode.name, got, fetchN, err))
			return t
		}
		allocsPerRec := float64(m1.Mallocs-m0.Mallocs) / float64(got)
		bytesPerRec := float64(m1.TotalAlloc-m0.TotalAlloc) / float64(got)
		rate := float64(int64(got)*valueBytes) / dur.Seconds() / (1 << 20)
		t.Rows = append(t.Rows, []string{
			mode.name, fmt.Sprint(got), fmt.Sprintf("%.1f", rate),
			fmt.Sprintf("%.1f", float64(got)/dur.Seconds()/1e3),
			"-", fmt.Sprintf("%.0f", bytesPerRec),
		})
		t.Results = append(t.Results, Result{
			Name:          mode.name,
			RecordsPerSec: float64(got) / dur.Seconds(),
			MBPerSec:      rate,
			Extra: map[string]string{
				"allocs_per_record":      fmt.Sprintf("%.2f", allocsPerRec),
				"alloc_bytes_per_record": fmt.Sprintf("%.0f", bytesPerRec),
			},
		})
	}
	if len(t.Results) >= 2 {
		zc := t.Results[len(t.Results)-2]
		buf := t.Results[len(t.Results)-1]
		if zc.Name == "fetch/zero-copy-splice" && buf.Name == "fetch/buffered-reencode" {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"zero-copy fetch allocates %s B/record vs %s buffered — the splice never materializes the batch "+
					"(the re-encode's read buffer and frame copy are the difference); malloc counts tie because the "+
					"consumer's per-message decode, identical in both modes, dominates the process-wide count",
				zc.Extra["alloc_bytes_per_record"], buf.Extra["alloc_bytes_per_record"]))
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"fsync barrier modeled at %s on top of the real fsync; policies: none (OS flush), interval (background ticker), batch (inline per append), group (windowed, acks deferred to the covering fdatasync)", e20Barrier))
	return t
}

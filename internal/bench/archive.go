package bench

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/archive"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
)

// E14ArchiveExport measures the archival bridge's export path: draining a
// feed into manifest-tracked DFS segments at different roll sizes. Larger
// segments amortise the per-segment manifest commit and rename, so
// throughput should climb with segment size and flatten once the commit
// cost is noise.
func E14ArchiveExport(scale Scale) Table {
	t := Table{
		ID:      "E14",
		Title:   "archive export throughput vs segment size",
		Claim:   "§3: the log layer feeds the offline backend; export runs at sequential-IO speed, bounded by per-segment commit overhead",
		Headers: []string{"segment KB", "records", "export MB/s", "segments"},
	}
	records := scale.pick(4000, 40000)
	const valueBytes = 1024
	segmentKBs := []int{64, 256, 1024}
	if scale.Quick {
		segmentKBs = []int{64, 512}
	}

	s, err := newStack(1, nil)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer s.Shutdown()

	for _, segKB := range segmentKBs {
		topic := fmt.Sprintf("e14-%dk", segKB)
		if err := s.CreateFeed(topic, 2, 1); err != nil {
			t.Notes = append(t.Notes, "failed: "+err.Error())
			return t
		}
		if err := produceValues(s, topic, records, valueBytes, 64, 1); err != nil {
			t.Notes = append(t.Notes, "produce failed: "+err.Error())
			return t
		}
		start := time.Now()
		stats, err := s.ArchiveSnapshot(archive.SnapshotConfig{
			Topic:        topic,
			SegmentBytes: int64(segKB) << 10,
		})
		if err != nil {
			t.Notes = append(t.Notes, "snapshot failed: "+err.Error())
			return t
		}
		dur := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(segKB),
			fmt.Sprint(stats.Records),
			mbPerSec(stats.Bytes, dur),
			fmt.Sprint(stats.Segments),
		})
	}
	t.Notes = append(t.Notes, "expected shape: MB/s grows with segment size as manifest commits amortise")
	return t
}

// E15ArchiveScan is the E1 companion for reads: scanning the same feed
// history through the nearline path (offset-based consumer over the commit
// log) versus the offline path (a MapReduce count over archived segments on
// a production-cost DFS). The nearline scan wins on latency; the archived
// path is what batch backends get without touching the brokers at all.
func E15ArchiveScan(scale Scale) Table {
	t := Table{
		ID:      "E15",
		Title:   "nearline scan vs offline MR scan of archived history",
		Claim:   "§1/§3: one source of truth serves both stacks; nearline reads are cheap, offline reads pay DFS+scheduler costs but offload the brokers",
		Headers: []string{"records", "nearline ms", "offline MR ms", "mr/nearline"},
	}
	records := scale.pick(2000, 20000)
	const valueBytes = 512
	const partitions = 2

	s, err := newStack(1, nil)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer s.Shutdown()
	const topic = "e15-history"
	if err := s.CreateFeed(topic, partitions, 1); err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	if err := produceValues(s, topic, records, valueBytes, 64, 1); err != nil {
		t.Notes = append(t.Notes, "produce failed: "+err.Error())
		return t
	}

	// The offline side archives into a DFS that charges production costs,
	// and the MR engine pays a scheduler delay per phase, as in E1.
	fsDir, err := os.MkdirTemp("", "e15-dfs-")
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer os.RemoveAll(fsDir)
	fs, err := dfs.Open(dfs.Config{Dir: fsDir, ChunkBytes: 1 << 20, Cost: dfs.ProductionModel()})
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer fs.Close()
	if _, err := archive.Snapshot(s.Client(), archive.SnapshotConfig{
		Topic: topic,
		FS:    fs,
	}); err != nil {
		t.Notes = append(t.Notes, "snapshot failed: "+err.Error())
		return t
	}

	// ---- Nearline scan: pull the whole history through a consumer.
	nearStart := time.Now()
	got, err := consumeCount(s, topic, partitions, records, 30*time.Second)
	if err != nil || got < records {
		t.Notes = append(t.Notes, fmt.Sprintf("nearline scan incomplete: %d/%d %v", got, records, err))
		return t
	}
	nearDur := time.Since(nearStart)

	// ---- Offline scan: MR count over the archived segments.
	files, decode, err := archive.MRInput(fs, "/archive", topic)
	if err != nil {
		t.Notes = append(t.Notes, "mr input failed: "+err.Error())
		return t
	}
	engine := mapreduce.NewEngine(fs, mapreduce.EngineConfig{SchedulerDelay: 250 * time.Millisecond})
	mrStart := time.Now()
	stats, err := engine.Run(mapreduce.JobSpec{
		Name:       "e15-count",
		InputFiles: files,
		Decode:     decode,
		OutputDir:  "/e15/out",
		Map: func(_, _ string, emit func(k, v string)) error {
			emit("records", "1")
			return nil
		},
		Reduce: func(key string, values []string, emit func(k, v string)) error {
			emit(key, strconv.Itoa(len(values)))
			return nil
		},
		NumReducers: 1,
	})
	if err != nil {
		t.Notes = append(t.Notes, "mr scan failed: "+err.Error())
		return t
	}
	mrDur := time.Since(mrStart)
	if stats.MapInputRecords != records {
		t.Notes = append(t.Notes, fmt.Sprintf("mr scanned %d records, want %d", stats.MapInputRecords, records))
	}

	ratio := float64(mrDur) / float64(nearDur)
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(records), ms(nearDur), ms(mrDur), fmt.Sprintf("%.1fx", ratio),
	})
	t.Notes = append(t.Notes, "expected shape: nearline scan is faster; MR pays scheduler + DFS costs but never touches the brokers")
	return t
}

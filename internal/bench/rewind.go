package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// E18RewindScan measures tiered log storage (internal/tier): the throughput
// of a sequential consume that starts at offset 0 and crosses the cold→hot
// boundary — cold segments hydrated from the DFS, hot segments served from
// the local log — against a hot-only baseline of the same data, plus the
// offloader's own throughput. The paper's promise (§2, §4.1) is that rewind
// "as far back as needed" needs no separate offline copy: the cold tier
// costs a hydration penalty on first touch and then reads at memory speed
// through the bounded reader LRU.
func E18RewindScan(scale Scale) Table {
	t := Table{
		ID:      "E18",
		Title:   "rewind scan across the hot/cold boundary vs hot-only, plus offload throughput",
		Claim:   "§2/§4.1: consumers rewind past local retention through the same fetch API; the cold tier adds a first-touch hydration cost, not a second pipeline",
		Headers: []string{"phase", "records", "rec/s", "MB/s"},
	}
	records := scale.pick(3000, 30000)
	const valueBytes = 1024

	s, err := newStack(1, func(cfg *core.Config) {
		cfg.TierInterval = 25 * time.Millisecond
		cfg.RetentionInterval = 25 * time.Millisecond
	})
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer s.Shutdown()

	const tieredTopic = "e18-tiered"
	const hotTopic = "e18-hot"
	if err := s.CreateTopic(wire.TopicSpec{
		Name:              tieredTopic,
		NumPartitions:     1,
		ReplicationFactor: 1,
		SegmentBytes:      256 << 10,
		Tiered:            true,
		HotRetentionMs:    -1,
		HotRetentionBytes: 1 << 20, // keep ~4 segments hot, tier the rest
		RetentionMs:       -1,
		RetentionBytes:    -1,
	}); err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	if err := s.CreateFeed(hotTopic, 1, 1); err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}

	// Produce the same history into both topics; the tiered one offloads
	// concurrently. Offload throughput is measured from produce start to
	// the frontier reaching the log end.
	offloadStart := time.Now()
	if err := produceValues(s, tieredTopic, records, valueBytes, 0, 1); err != nil {
		t.Notes = append(t.Notes, "produce failed: "+err.Error())
		return t
	}
	if err := produceValues(s, hotTopic, records, valueBytes, 0, 1); err != nil {
		t.Notes = append(t.Notes, "produce failed: "+err.Error())
		return t
	}
	st, err := awaitTiered(s, tieredTopic, int64(records), 60*time.Second)
	if err != nil {
		t.Notes = append(t.Notes, "offload stalled: "+err.Error())
		return t
	}
	offloadDur := time.Since(offloadStart)
	logicalBytes := int64(records) * valueBytes
	coldShare := float64(st.TieredNextOffset) / float64(records)
	addRow := func(phase string, n int, d time.Duration) {
		bytes := int64(n) * valueBytes
		t.Rows = append(t.Rows, []string{
			phase,
			fmt.Sprint(n),
			fmt.Sprintf("%.0f", float64(n)/d.Seconds()),
			mbPerSec(bytes, d),
		})
		t.Results = append(t.Results, Result{
			Name:          phase,
			RecordsPerSec: float64(n) / d.Seconds(),
			MBPerSec:      float64(bytes) / d.Seconds() / (1 << 20),
		})
	}
	addRow("offload (produce→fully tiered)", int(st.TieredNextOffset), offloadDur)

	scan := func(topic string) (time.Duration, error) {
		start := time.Now()
		got, err := consumeCount(s, topic, 1, records, 120*time.Second)
		if err != nil {
			return 0, err
		}
		if got < records {
			return 0, fmt.Errorf("scan of %s got %d/%d records", topic, got, records)
		}
		return time.Since(start), nil
	}
	coldDur, err := scan(tieredTopic) // first touch: hydrates cold segments
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	addRow("rewind cold→hot (first touch)", records, coldDur)
	warmDur, err := scan(tieredTopic) // reader LRU already hydrated
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	addRow("rewind cold→hot (LRU warm)", records, warmDur)
	hotDur, err := scan(hotTopic)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	addRow("hot-only baseline", records, hotDur)

	t.Notes = append(t.Notes,
		fmt.Sprintf("%.0f%% of the history was served from the cold tier (local start %d, frontier %d, end %d)",
			coldShare*100, st.LocalStartOffset, st.TieredNextOffset, records),
		fmt.Sprintf("logical history %d MB; cold tier holds %d compressed bytes in %d segments",
			logicalBytes>>20, st.TieredBytes, st.TieredSegments),
		"expected shape: first touch pays DFS hydration once per cold segment; a warm reader LRU serves cold history at memory speed (at or above the hot-only file-backed baseline)")
	return t
}

// awaitTiered polls the topic's tier status until every sealed record is
// offloaded (frontier at the last sealed segment boundary) and the local
// start has advanced, i.e. early reads must cross the cold tier.
func awaitTiered(s *core.Stack, topic string, end int64, timeout time.Duration) (wire.TierStatusPartition, error) {
	deadline := time.Now().Add(timeout)
	var last wire.TierStatusPartition
	for {
		sts, err := s.TierStatus(topic)
		if err == nil && len(sts) == 1 {
			last = sts[0]
			// All but the active segment tiered, and some local prefix
			// deleted: the rewind genuinely starts cold.
			if last.LocalStartOffset > 0 && last.TieredSegments > 0 &&
				last.TieredNextOffset >= last.LocalStartOffset && last.NextOffset >= end {
				return last, nil
			}
		}
		if time.Now().After(deadline) {
			return last, fmt.Errorf("tier status %+v (err %v) after %s", last, err, timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

package bench

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/storage/cache"
	"repro/internal/storage/compact"
	"repro/internal/storage/log"
	"repro/internal/storage/record"
)

// E2ThroughputVsLogSize validates §4.1: append and tail-read throughput of
// the commit log stay constant as the log grows (the property that makes
// long retention cheap).
func E2ThroughputVsLogSize(scale Scale) Table {
	t := Table{
		ID:      "E2",
		Title:   "read/write throughput vs log size",
		Claim:   "§4.1: throughput remains constant independent of log size",
		Headers: []string{"log size (MB)", "append MB/s", "tail-read MB/s"},
	}
	sizesMB := []int{16, 64, 128, 256}
	if scale.Quick {
		sizesMB = []int{4, 16}
	}
	const recordBytes = 1024
	value := make([]byte, recordBytes)
	dir, err := os.MkdirTemp("", "e2-")
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer os.RemoveAll(dir)
	l, err := log.Open(dir, log.Config{SegmentBytes: 32 << 20, RetentionMs: -1, RetentionBytes: -1})
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer l.Close()

	var written int64
	batch := make([]record.Record, 64)
	for _, sizeMB := range sizesMB {
		target := int64(sizeMB) << 20
		// Grow the log to the target while timing the appends.
		start := time.Now()
		var grew int64
		for written < target {
			for i := range batch {
				batch[i] = record.Record{Timestamp: 1, Value: value}
			}
			if _, err := l.Append(batch); err != nil {
				t.Notes = append(t.Notes, "append failed: "+err.Error())
				return t
			}
			written += int64(len(batch) * recordBytes)
			grew += int64(len(batch) * recordBytes)
		}
		appendRate := mbPerSec(grew, time.Since(start))

		// Quiesce OS write-back so read timing is not charged for
		// flushing the data just written.
		if err := l.Flush(); err != nil {
			t.Notes = append(t.Notes, "flush failed: "+err.Error())
			return t
		}

		// Tail read: the last ~4MB of the log.
		tail := int64(4 << 20)
		startOffset := l.NextOffset() - tail/recordBytes
		start = time.Now()
		var readBytes int64
		off := startOffset
		for off < l.NextOffset() {
			data, err := l.Read(off, 1<<20)
			if err != nil || len(data) == 0 {
				break
			}
			readBytes += int64(len(data))
			info, err := record.PeekBatchInfo(data[len(data)-lastBatchLen(data):])
			if err != nil {
				break
			}
			off = info.LastOffset + 1
		}
		readRate := mbPerSec(readBytes, time.Since(start))
		t.Rows = append(t.Rows, []string{fmt.Sprint(sizeMB), appendRate, readRate})
	}
	t.Notes = append(t.Notes, "expected shape: both columns roughly flat across sizes")
	return t
}

// lastBatchLen returns the length of the final complete batch in data.
func lastBatchLen(data []byte) int {
	pos, last := 0, 0
	for pos < len(data) {
		n, err := record.PeekBatchLen(data[pos:])
		if err != nil {
			break
		}
		last = n
		pos += n
	}
	return last
}

// E3AntiCaching validates §4.1's anti-caching design: reads near the head
// of the log are served from resident pages, cold random reads from the
// tail pay the disk penalty.
func E3AntiCaching(scale Scale) Table {
	t := Table{
		ID:      "E3",
		Title:   "anti-caching: head reads vs cold random reads",
		Claim:   "§4.1: head of the log stays in RAM; historical reads pay disk latency",
		Headers: []string{"access pattern", "hit ratio", "p50 read ms", "p99 read ms"},
	}
	logMB := scale.pick(16, 128)
	cacheMB := logMB / 4
	pc := cache.New(cache.Config{
		PageSize:           4096,
		CapacityBytes:      int64(cacheMB) << 20,
		DiskPenaltyPerPage: 50 * time.Microsecond,
		FlushDelay:         10 * time.Millisecond,
	})
	dir, err := os.MkdirTemp("", "e3-")
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer os.RemoveAll(dir)
	l, err := log.Open(dir, log.Config{
		SegmentBytes: 8 << 20, RetentionMs: -1, RetentionBytes: -1, Tracker: pc,
	})
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer l.Close()

	const recordBytes = 1024
	value := make([]byte, recordBytes)
	total := int64(logMB) << 20
	batch := make([]record.Record, 64)
	var written int64
	for written < total {
		for i := range batch {
			batch[i] = record.Record{Timestamp: 1, Value: value}
		}
		l.Append(batch)
		written += int64(len(batch) * recordBytes)
	}
	end := l.NextOffset()
	reads := scale.pick(200, 1000)

	measure := func(offsetFn func(i int) int64) (cache.Stats, durations) {
		pc.Reset()
		var lat durations
		for i := 0; i < reads; i++ {
			off := offsetFn(i)
			start := time.Now()
			if _, err := l.Read(off, 64<<10); err != nil {
				break
			}
			lat = append(lat, time.Since(start))
		}
		return pc.Stats(), lat
	}

	// Nearline consumers read the head (most recent cache-sized window).
	headSpan := int64(cacheMB) << 19 / recordBytes // half the cache, in records
	headStats, headLat := measure(func(i int) int64 {
		return end - 1 - int64(i)%headSpan
	})
	// Historical backfill reads uniformly over the whole log.
	step := end / int64(reads)
	if step == 0 {
		step = 1
	}
	coldStats, coldLat := measure(func(i int) int64 {
		return (int64(i) * step * 7919) % end // pseudo-random stride
	})

	t.Rows = append(t.Rows, []string{
		"head of log (nearline)",
		fmt.Sprintf("%.2f", headStats.HitRatio()),
		ms(headLat.p(0.5)), ms(headLat.p(0.99)),
	})
	t.Rows = append(t.Rows, []string{
		"uniform random (historical)",
		fmt.Sprintf("%.2f", coldStats.HitRatio()),
		ms(coldLat.p(0.5)), ms(coldLat.p(0.99)),
	})

	// Ablation: sweep the cache capacity for the random workload. More
	// RAM helps historical scans sub-linearly — the cost-effectiveness
	// argument of §4.5 for NOT keeping everything in memory.
	for _, frac := range []int{8, 2, 1} {
		sweepMB := logMB / frac
		sc := cache.New(cache.Config{
			PageSize:           4096,
			CapacityBytes:      int64(sweepMB) << 20,
			DiskPenaltyPerPage: 50 * time.Microsecond,
			FlushDelay:         10 * time.Millisecond,
		})
		sl, err := log.Open(dir, log.Config{
			SegmentBytes: 8 << 20, RetentionMs: -1, RetentionBytes: -1, Tracker: sc,
		})
		if err != nil {
			break
		}
		var lat durations
		for i := 0; i < reads; i++ {
			off := (int64(i) * step * 7919) % end
			s0 := time.Now()
			if _, err := sl.Read(off, 64<<10); err != nil {
				break
			}
			lat = append(lat, time.Since(s0))
		}
		stats := sc.Stats()
		sl.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("random, cache=%dMB (ablation)", sweepMB),
			fmt.Sprintf("%.2f", stats.HitRatio()),
			ms(lat.p(0.5)), ms(lat.p(0.99)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("log %dMB, page-cache model %dMB, disk penalty 50µs/page", logMB, cacheMB),
		"expected shape: head hit ratio near 1 with sub-ms reads; random reads miss and pay the penalty",
		"ablation shape: random-read hit ratio grows with cache size but needs RAM ~ log size to win (§4.5)")
	return t
}

// E4Compaction validates §4.1's log compaction: keyed changelogs shrink to
// ~one record per key and recovery reads proportionally less.
func E4Compaction(scale Scale) Table {
	t := Table{
		ID:      "E4",
		Title:   "log compaction of keyed changelogs",
		Claim:   "§4.1: compaction reduces changelog size and speeds recovery",
		Headers: []string{"", "records", "bytes", "full-replay ms"},
	}
	keys := scale.pick(500, 5000)
	updates := scale.pick(20000, 200000)
	dir, err := os.MkdirTemp("", "e4-")
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer os.RemoveAll(dir)
	l, err := log.Open(dir, log.Config{SegmentBytes: 256 << 10, Compacted: true})
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer l.Close()
	for i := 0; i < updates; i++ {
		l.Append([]record.Record{{
			Timestamp: 1,
			Key:       []byte(fmt.Sprintf("user-%d", i%keys)),
			Value:     []byte(fmt.Sprintf("profile-state-%d", i)),
		}})
	}

	replay := func() (int, time.Duration) {
		start := time.Now()
		n := 0
		off := l.StartOffset()
		for {
			data, err := l.Read(off, 1<<20)
			if err != nil || len(data) == 0 {
				break
			}
			record.ScanRecords(data, func(r record.Record) error {
				if r.Offset >= off {
					n++
					off = r.Offset + 1
				}
				return nil
			})
		}
		return n, time.Since(start)
	}

	nBefore, dBefore := replay()
	sizeBefore := l.Size()
	stats, err := compact.Compact(l)
	if err != nil {
		t.Notes = append(t.Notes, "compact failed: "+err.Error())
		return t
	}
	nAfter, dAfter := replay()
	sizeAfter := l.Size()

	t.Rows = append(t.Rows, []string{"before compaction", fmt.Sprint(nBefore), fmt.Sprint(sizeBefore), ms(dBefore)})
	t.Rows = append(t.Rows, []string{"after compaction", fmt.Sprint(nAfter), fmt.Sprint(sizeAfter), ms(dAfter)})
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d keys, %d updates; compaction ratio %.3f", keys, updates, stats.Ratio()),
		"expected shape: records shrink toward key count; replay time shrinks proportionally")
	return t
}

// E6Failover validates §4.3: killing a partition leader hands leadership
// to an in-sync follower without losing acknowledged data, within roughly
// the liveness-detection window.
func E6Failover(scale Scale) Table {
	t := Table{
		ID:      "E6",
		Title:   "broker failure and leader hand-over",
		Claim:   "§4.3: a hand-over process selects a new leader among the followers; committed data survives",
		Headers: []string{"metric", "value"},
	}
	s, err := newStack(3, nil)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer s.Shutdown()
	if err := s.CreateFeed("ha", 1, 3); err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	p := s.NewProducer(client.ProducerConfig{Acks: client.AcksAll})
	defer p.Close()

	pre := scale.pick(100, 500)
	acked := 0
	for i := 0; i < pre; i++ {
		if _, err := p.SendSync(client.Message{Topic: "ha", Key: []byte("k"), Value: []byte(fmt.Sprintf("pre-%d", i))}); err == nil {
			acked++
		}
	}
	leader, err := s.Client().LeaderFor("ha", 0)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	killAt := time.Now()
	s.KillBroker(leader)
	// First successful produce after the kill marks recovery.
	var failoverTime time.Duration
	for {
		if _, err := p.SendSync(client.Message{Topic: "ha", Key: []byte("k"), Value: []byte("probe")}); err == nil {
			failoverTime = time.Since(killAt)
			acked++
			break
		}
		if time.Since(killAt) > 30*time.Second {
			t.Notes = append(t.Notes, "failover never completed")
			return t
		}
	}
	post := scale.pick(100, 500)
	for i := 0; i < post; i++ {
		if _, err := p.SendSync(client.Message{Topic: "ha", Key: []byte("k"), Value: []byte(fmt.Sprintf("post-%d", i))}); err == nil {
			acked++
		}
	}
	got, err := consumeCount(s, "ha", 1, acked, 30*time.Second)
	if err != nil {
		t.Notes = append(t.Notes, "consume failed: "+err.Error())
	}
	newLeader, _ := s.Client().LeaderFor("ha", 0)
	t.Rows = append(t.Rows,
		[]string{"failover time (kill -> first ack)", failoverTime.Round(time.Millisecond).String()},
		[]string{"old leader / new leader", fmt.Sprintf("%d -> %d", leader, newLeader)},
		[]string{"acked messages", fmt.Sprint(acked)},
		[]string{"messages readable after failover", fmt.Sprint(got)},
	)
	if got >= acked {
		t.Rows = append(t.Rows, []string{"committed-data loss", "none"})
	} else {
		t.Rows = append(t.Rows, []string{"committed-data loss", fmt.Sprintf("%d LOST", acked-got)})
	}
	t.Notes = append(t.Notes, "failover time is bounded below by the 750ms session (liveness) timeout")
	return t
}

// E7AcksTradeoff validates §4.3's durability/performance trade-off across
// acknowledgement levels with replication factor 3.
func E7AcksTradeoff(scale Scale) Table {
	t := Table{
		ID:      "E7",
		Title:   "durability vs produce performance (RF=3)",
		Claim:   "§4.3: the chosen durability level impacts throughput and latency",
		Headers: []string{"acks", "mean ms", "p99 ms", "msgs/s"},
	}
	s, err := newStack(3, nil)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer s.Shutdown()
	n := scale.pick(300, 2000)
	levels := []struct {
		name string
		acks int16
	}{
		{"0 (fire-and-forget)", client.AcksNone},
		{"1 (leader)", 1},
		{"all (full ISR)", client.AcksAll},
	}
	for li, lvl := range levels {
		topic := fmt.Sprintf("acks-%d", li)
		if err := s.CreateFeed(topic, 1, 3); err != nil {
			t.Notes = append(t.Notes, "failed: "+err.Error())
			return t
		}
		p := s.NewProducer(client.ProducerConfig{Acks: lvl.acks})
		var lat durations
		value := make([]byte, 512)
		start := time.Now()
		for i := 0; i < n; i++ {
			s0 := time.Now()
			if _, err := p.SendSync(client.Message{Topic: topic, Value: value}); err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("acks=%s produce error: %v", lvl.name, err))
				break
			}
			lat = append(lat, time.Since(s0))
		}
		total := time.Since(start)
		p.Close()
		t.Rows = append(t.Rows, []string{
			lvl.name, ms(lat.mean()), ms(lat.p(0.99)),
			fmt.Sprintf("%.0f", float64(len(lat))/total.Seconds()),
		})
	}
	t.Notes = append(t.Notes, "expected shape: latency rises (and throughput falls) from acks=0 to acks=all")
	return t
}

// E9ConsumerGroups validates §3.1's consumer-group semantics: queueing
// within a group, pub/sub across groups, and load spreading over members.
func E9ConsumerGroups(scale Scale) Table {
	t := Table{
		ID:      "E9",
		Title:   "consumer groups: queue within, pub/sub across",
		Claim:   "§3.1: one consumer per group receives each message; every subscribed group receives all",
		Headers: []string{"group", "members", "msgs seen", "exactly-once in group", "per-member spread"},
	}
	s, err := newStack(1, nil)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer s.Shutdown()
	const parts = 8
	if err := s.CreateFeed("work", parts, 1); err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	n := scale.pick(400, 4000)
	if err := produceValues(s, "work", n, 128, 0, 1); err != nil {
		t.Notes = append(t.Notes, "produce failed: "+err.Error())
		return t
	}

	type groupSpec struct {
		name    string
		members int
	}
	for _, gs := range []groupSpec{{"g1", 1}, {"g2", 2}, {"g4", 4}} {
		var mu sync.Mutex
		seen := make(map[string]int) // value hash -> count
		perMember := make([]int64, gs.members)
		var wg sync.WaitGroup
		var done atomic.Bool
		for m := 0; m < gs.members; m++ {
			wg.Add(1)
			go func(m int) {
				defer wg.Done()
				gc, err := client.NewGroupConsumer(s.Client(), client.ConsumerConfig{}, client.GroupConfig{
					Group:             gs.name,
					Topics:            []string{"work"},
					SessionTimeout:    5 * time.Second,
					RebalanceTimeout:  5 * time.Second,
					HeartbeatInterval: 250 * time.Millisecond,
				})
				if err != nil {
					return
				}
				defer gc.Close()
				for !done.Load() {
					msgs, err := gc.Poll(100 * time.Millisecond)
					if err != nil {
						continue
					}
					mu.Lock()
					for _, msg := range msgs {
						seen[fmt.Sprintf("%d/%d", msg.Partition, msg.Offset)]++
					}
					mu.Unlock()
					atomic.AddInt64(&perMember[m], int64(len(msgs)))
				}
			}(m)
		}
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			total := len(seen)
			mu.Unlock()
			if total >= n {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		done.Store(true)
		wg.Wait()
		mu.Lock()
		dupes := 0
		for _, c := range seen {
			if c > 1 {
				dupes++
			}
		}
		total := len(seen)
		mu.Unlock()
		exactly := "yes"
		if dupes > 0 {
			exactly = fmt.Sprintf("%d dupes (at-least-once)", dupes)
		}
		spread := make([]string, gs.members)
		for i := range perMember {
			spread[i] = fmt.Sprint(atomic.LoadInt64(&perMember[i]))
		}
		t.Rows = append(t.Rows, []string{
			gs.name, fmt.Sprint(gs.members), fmt.Sprint(total), exactly,
			fmt.Sprintf("[%s]", joinStrings(spread)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d messages over %d partitions; every group sees all messages; members split the load", n, parts))
	return t
}

func joinStrings(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += " "
		}
		out += s
	}
	return out
}

// E10Decoupling validates §3.2: producers and consumers are fully
// decoupled by the log — a stalled consumer affects neither the producer
// nor a fast consumer.
func E10Decoupling(scale Scale) Table {
	t := Table{
		ID:      "E10",
		Title:   "producer/consumer decoupling",
		Claim:   "§3.2: a slow consumer cannot back-pressure the producer or other consumers",
		Headers: []string{"configuration", "produce p99 ms", "produce msgs/s", "fast-consumer caught up"},
	}
	s, err := newStack(1, nil)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer s.Shutdown()
	n := scale.pick(500, 5000)

	run := func(topic string, withSlow bool) []string {
		s.CreateFeed(topic, 1, 1)
		fast := s.NewConsumer(client.ConsumerConfig{})
		defer fast.Close()
		fast.Assign(topic, 0, client.StartEarliest)
		var stopSlow chan struct{}
		if withSlow {
			slow := s.NewConsumer(client.ConsumerConfig{})
			slow.Assign(topic, 0, client.StartEarliest)
			stopSlow = make(chan struct{})
			go func() {
				defer slow.Close()
				for {
					select {
					case <-stopSlow:
						return
					case <-time.After(500 * time.Millisecond):
						slow.Poll(10 * time.Millisecond) // barely consumes
					}
				}
			}()
		}
		fastGot := 0
		go func() {
			for fastGot < n {
				msgs, err := fast.Poll(100 * time.Millisecond)
				if err != nil {
					continue
				}
				fastGot += len(msgs)
			}
		}()
		p := s.NewProducer(client.ProducerConfig{})
		defer p.Close()
		var lat durations
		start := time.Now()
		value := make([]byte, 256)
		for i := 0; i < n; i++ {
			s0 := time.Now()
			p.SendSync(client.Message{Topic: topic, Value: value})
			lat = append(lat, time.Since(s0))
		}
		total := time.Since(start)
		deadline := time.Now().Add(20 * time.Second)
		for fastGot < n && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
		}
		if stopSlow != nil {
			close(stopSlow)
		}
		caught := "yes"
		if fastGot < n {
			caught = fmt.Sprintf("no (%d/%d)", fastGot, n)
		}
		return []string{
			map[bool]string{false: "producer + fast consumer", true: "+ stalled consumer attached"}[withSlow],
			ms(lat.p(0.99)),
			fmt.Sprintf("%.0f", float64(n)/total.Seconds()),
			caught,
		}
	}
	t.Rows = append(t.Rows, run("dec-base", false))
	t.Rows = append(t.Rows, run("dec-slow", true))
	t.Notes = append(t.Notes, "expected shape: both rows equivalent — the log absorbs the lag")
	return t
}

// E11ManyTopics validates §5's deployment shape at reduced scale: many
// topics and partitions on a small cluster stay healthy for metadata and
// steady-state traffic.
func E11ManyTopics(scale Scale) Table {
	t := Table{
		ID:      "E11",
		Title:   "scaled-down deployment: many topics and partitions",
		Claim:   "§5: 25k topics / 200k partitions across ~300 machines (here ~1/125 scale on 3)",
		Headers: []string{"metric", "value"},
	}
	s, err := newStack(3, func(c *core.Config) {
		c.SessionTimeout = 2 * time.Second
	})
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer s.Shutdown()
	topics := scale.pick(20, 200)
	const parts = 4
	start := time.Now()
	for i := 0; i < topics; i++ {
		if err := s.CreateFeed(fmt.Sprintf("feed-%04d", i), parts, 1); err != nil {
			t.Notes = append(t.Notes, "create failed: "+err.Error())
			return t
		}
	}
	createDur := time.Since(start)

	// Steady-state traffic across a sample of topics.
	sample := topics / 4
	if sample == 0 {
		sample = 1
	}
	perTopic := scale.pick(50, 200)
	start = time.Now()
	for i := 0; i < sample; i++ {
		if err := produceValues(s, fmt.Sprintf("feed-%04d", i*4), perTopic, 256, 0, 1); err != nil {
			t.Notes = append(t.Notes, "produce failed: "+err.Error())
			return t
		}
	}
	produceDur := time.Since(start)
	totalMsgs := sample * perTopic

	start = time.Now()
	got := 0
	for i := 0; i < sample; i++ {
		n, _ := consumeCount(s, fmt.Sprintf("feed-%04d", i*4), parts, perTopic, 20*time.Second)
		got += n
	}
	consumeDur := time.Since(start)

	start = time.Now()
	if err := s.Client().RefreshMetadata(); err != nil {
		t.Notes = append(t.Notes, "metadata failed: "+err.Error())
	}
	metaDur := time.Since(start)

	t.Rows = append(t.Rows,
		[]string{"topics x partitions", fmt.Sprintf("%d x %d = %d partitions", topics, parts, topics*parts)},
		[]string{"create time total", createDur.Round(time.Millisecond).String()},
		[]string{"produce msgs/s", fmt.Sprintf("%.0f", float64(totalMsgs)/produceDur.Seconds())},
		[]string{"consume msgs/s", fmt.Sprintf("%.0f (%d/%d)", float64(got)/consumeDur.Seconds(), got, totalMsgs)},
		[]string{"full metadata fetch", metaDur.Round(time.Microsecond).String()},
	)
	t.Notes = append(t.Notes, "shape target: linear create cost, healthy traffic and fast metadata at scale")
	return t
}

package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/table"
	"repro/internal/workload"
)

// E22TableReads measures the queryable-table subsystem (§2/§3.2 serve-side
// reads): a compacted table feed is loaded with a large distinct keyspace,
// materialized by the partition leaders, then hit with a mixed zipfian
// load — unpaced point readers plus continuous writers — while read
// latency, read throughput and staleness (hw − applied at serve time) are
// sampled. The target shape: point reads answer in single-digit
// milliseconds at thousands of reads/s per broker while writes stream in,
// and observed staleness stays near zero offsets because the materializer
// tails the log continuously.
func E22TableReads(scale Scale) Table {
	t := Table{
		ID:      "E22",
		Title:   "queryable tables: point-read latency and staleness under mixed zipfian load",
		Claim:   "§2/§3.2: serve-side point reads (\"who viewed my profile\") come off the same lineage of data as the feed — partition leaders materialize the compacted log and serve reads with bounded, observable staleness",
		Headers: []string{"phase", "ops", "ops/s", "p50 ms", "p99 ms", "staleness mean/max (offsets)"},
	}
	fail := func(err error) Table {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	s, err := newStack(2, nil)
	if err != nil {
		return fail(err)
	}
	defer s.Shutdown()
	const topic = "e22-table"
	const partitions = 4
	if err := s.CreateTable(topic, partitions, 1); err != nil {
		return fail(err)
	}

	keys := scale.pick(20_000, 1_000_000)
	const valueBytes = 32
	const zipfS = 1.1
	gen := workload.NewKeys(workload.KeyConfig{Seed: 22, Keys: keys, ZipfS: zipfS})

	// Phase 1 — load: every key written once (sequential indices, so the
	// materialized cardinality is exactly `keys`), keyed producer, large
	// batches.
	value := make([]byte, valueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	prod := s.NewProducer(client.ProducerConfig{BatchBytes: 256 << 10})
	loadStart := time.Now()
	for i := 0; i < keys; i++ {
		if err := prod.Send(client.Message{Topic: topic, Key: gen.Key(i), Value: value}); err != nil {
			prod.Close()
			return fail(err)
		}
	}
	if err := prod.Flush(); err != nil {
		prod.Close()
		return fail(err)
	}
	loadDur := time.Since(loadStart)

	// Wait for the materializers to catch up before measuring reads: the
	// bench measures serve latency, not bootstrap progress.
	catchupStart := time.Now()
	var materialized int64
	for {
		sts, err := s.TableStatus(topic)
		if err != nil {
			prod.Close()
			return fail(err)
		}
		lag, total := int64(0), int64(0)
		for _, st := range sts {
			lag += st.Lag()
			total += st.ApproxLen
		}
		if lag == 0 && total >= int64(keys) {
			materialized = total
			break
		}
		if time.Since(catchupStart) > 5*time.Minute {
			prod.Close()
			return fail(fmt.Errorf("materialization never caught up (lag %d, len %d)", lag, total))
		}
		time.Sleep(50 * time.Millisecond)
	}
	catchupDur := time.Since(catchupStart)

	// Phase 2 — mixed load: unpaced zipfian point readers (read-heavy
	// side) plus continuous zipfian writers streaming updates into the
	// same keyspace. Each reader gets its own client so connection
	// serialization does not flatten the measured concurrency.
	const readers = 4
	const writers = 2
	mixedDur := time.Duration(scale.pick(2, 10)) * time.Second
	stop := make(chan struct{})
	var wg sync.WaitGroup

	var writeCount atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			g := workload.NewKeys(workload.KeyConfig{Seed: seed, Keys: keys, ZipfS: zipfS})
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := prod.Send(client.Message{Topic: topic, Key: g.Next(), Value: value}); err != nil {
					return
				}
				writeCount.Add(1)
				time.Sleep(100 * time.Microsecond) // continuous stream, not a flood
			}
		}(int64(100 + w))
	}

	type readerStats struct {
		lat          durations
		reads        int64
		notFound     int64
		staleSum     int64
		staleMax     int64
		staleSamples int64
	}
	stats := make([]readerStats, readers)
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cli, err := s.NewClient(fmt.Sprintf("e22-reader-%d", id))
			if err != nil {
				return
			}
			defer cli.Close()
			router := table.NewRouter(cli, topic)
			g := workload.NewKeys(workload.KeyConfig{Seed: int64(200 + id), Keys: keys, ZipfS: zipfS})
			st := &stats[id]
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := g.Next()
				t0 := time.Now()
				res, err := router.Get(key, -1)
				if err != nil {
					continue
				}
				st.lat = append(st.lat, time.Since(t0))
				st.reads++
				if !res.Found {
					st.notFound++
				}
				stale := res.HighWatermark - res.AppliedOffset
				st.staleSum += stale
				st.staleSamples++
				if stale > st.staleMax {
					st.staleMax = stale
				}
			}
		}(rd)
	}

	mixedStart := time.Now()
	time.Sleep(mixedDur)
	close(stop)
	wg.Wait()
	measured := time.Since(mixedStart)
	prod.Close()

	var readLat durations
	var reads, notFound, staleSum, staleMax, staleSamples int64
	for i := range stats {
		readLat = append(readLat, stats[i].lat...)
		reads += stats[i].reads
		notFound += stats[i].notFound
		staleSum += stats[i].staleSum
		staleSamples += stats[i].staleSamples
		if stats[i].staleMax > staleMax {
			staleMax = stats[i].staleMax
		}
	}
	staleMean := 0.0
	if staleSamples > 0 {
		staleMean = float64(staleSum) / float64(staleSamples)
	}
	writes := writeCount.Load()

	t.Rows = append(t.Rows,
		[]string{"load (1 write/key)", fmt.Sprint(keys), fmt.Sprintf("%.0f", float64(keys)/loadDur.Seconds()), "-", "-", "-"},
		[]string{"point reads (mixed)", fmt.Sprint(reads), fmt.Sprintf("%.0f", float64(reads)/measured.Seconds()), ms(readLat.p(0.5)), ms(readLat.p(0.99)), fmt.Sprintf("%.2f/%d", staleMean, staleMax)},
		[]string{"writes (mixed)", fmt.Sprint(writes), fmt.Sprintf("%.0f", float64(writes)/measured.Seconds()), "-", "-", "-"},
	)
	t.Results = append(t.Results,
		Result{
			Name:          "load",
			RecordsPerSec: float64(keys) / loadDur.Seconds(),
			MBPerSec:      float64(int64(keys)*valueBytes) / loadDur.Seconds() / (1 << 20),
			Extra: map[string]string{
				"keys":               fmt.Sprint(keys),
				"materialized_keys":  fmt.Sprint(materialized),
				"catchup_after_load": catchupDur.Round(time.Millisecond).String(),
			},
		},
		Result{
			Name:          "point-reads",
			RecordsPerSec: float64(reads) / measured.Seconds(),
			P50Ms:         float64(readLat.p(0.5)) / float64(time.Millisecond),
			P99Ms:         float64(readLat.p(0.99)) / float64(time.Millisecond),
			Extra: map[string]string{
				"readers":               fmt.Sprint(readers),
				"zipf_s":                fmt.Sprint(zipfS),
				"not_found":             fmt.Sprint(notFound),
				"staleness_mean_offs":   fmt.Sprintf("%.2f", staleMean),
				"staleness_max_offs":    fmt.Sprint(staleMax),
				"concurrent_writes_sec": fmt.Sprintf("%.0f", float64(writes)/measured.Seconds()),
			},
		},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d partitions over 2 brokers, rf=1; %d distinct keys x %dB values; zipf s=%.1f shared by readers and writers", partitions, keys, valueBytes, zipfS),
		"expected shape: ms-scale point reads at thousands of reads/s while writes stream in; staleness near zero offsets because materializers tail the committed log continuously")
	return t
}

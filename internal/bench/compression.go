package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/storage/cache"
	"repro/internal/storage/record"
)

// E16Compression validates §3.1/§4.1's economics of moving sealed record
// batches through the brokers: with wire-level batch compression the
// brokers store, replicate and serve a producer's compressed batch
// verbatim, so each fetch window carries many times more records and —
// decisively — the stored log is small enough to stay page-cache resident.
// The brokers run with the stack's OS page-cache model (the same
// anti-caching model E3 applies to a standalone log, paper §4.1): logs
// larger than the per-partition cache pay a modeled disk penalty on cold
// reads, which is the regime the paper's multi-subscriber deployments live
// in. Incompressible payloads with the codec off keep their throughput —
// the sealed pass-through path does strictly less work than re-encoding.
//
// The consume side fans out to three consumers, the paper's high-fan-out
// shape: every page saved on the stored batch is saved once per subscriber.
func E16Compression(scale Scale) Table {
	t := Table{
		ID:      "E16",
		Title:   "batch compression: produce/consume throughput, codec on vs off",
		Claim:   "§3.1/§4.1: brokers move sealed compressed batches cheaply at high fan-out; zero recompression end to end",
		Headers: []string{"payload", "codec", "produce krec/s", "consume krec/s", "e2e krec/s", "logical MB/s", "p50 ms", "p99 ms"},
	}
	const (
		valueBytes  = 1024
		fetchWindow = 256 << 10 // bounded fetch window per round trip
		fanOut      = 3
	)
	n := scale.pick(8000, 60000)

	// Compressible: log-line-shaped repetitive text. Incompressible:
	// seeded pseudo-random bytes (deterministic across runs).
	compressible := make([]byte, valueBytes)
	for i := range compressible {
		compressible[i] = "timestamp=2015-01-04 level=INFO service=liquid msg=ok "[i%52]
	}
	incompressible := make([]byte, valueBytes)
	rng := rand.New(rand.NewSource(42))
	rng.Read(incompressible)

	type combo struct {
		payload string
		value   []byte
		codec   client.Codec
	}
	combos := []combo{
		{"compressible", compressible, client.CodecNone},
		{"compressible", compressible, client.CodecGzip},
		{"compressible", compressible, client.CodecFlate},
		{"incompressible", incompressible, client.CodecNone},
		{"incompressible", incompressible, client.CodecFlate},
	}

	s, err := newStack(1, func(c *core.Config) {
		c.PageCache = &cache.Config{
			PageSize:           4096,
			CapacityBytes:      2 << 20,                // per partition: logs beyond 2MB go cold
			DiskPenaltyPerPage: 150 * time.Microsecond, // 2015-era spinning disk: ~27MB/s random page reads
			FlushDelay:         10 * time.Millisecond,
		}
	})
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer s.Shutdown()

	// Warm up the stack (connections, first-topic setup, pools) so the
	// first measured combo is not charged for initialisation.
	if err := s.CreateFeed("e16-warm", 1, 1); err == nil {
		wp := s.NewProducer(client.ProducerConfig{BatchBytes: 256 << 10})
		for i := 0; i < 500; i++ {
			wp.Send(client.Message{Topic: "e16-warm", Value: compressible})
		}
		wp.Flush()
		wp.Close()
		consumeCount(s, "e16-warm", 1, 500, 10*time.Second)
	}

	for ci, cb := range combos {
		topic := fmt.Sprintf("e16-%d", ci)
		if err := s.CreateFeed(topic, 1, 1); err != nil {
			t.Notes = append(t.Notes, "create failed: "+err.Error())
			return t
		}

		// Produce: batched, acks=1, timed to the final flush.
		p := s.NewProducer(client.ProducerConfig{
			Acks:       1,
			BatchBytes: 256 << 10,
			Codec:      cb.codec,
		})
		startP := time.Now()
		for i := 0; i < n; i++ {
			if err := p.Send(client.Message{Topic: topic, Value: cb.value}); err != nil {
				t.Notes = append(t.Notes, "produce failed: "+err.Error())
				p.Close()
				return t
			}
		}
		if err := p.Flush(); err != nil {
			t.Notes = append(t.Notes, "flush failed: "+err.Error())
			p.Close()
			return t
		}
		produceDur := time.Since(startP)

		// Produce latency: a sync-send sample on the same topic/codec.
		var lat durations
		for i := 0; i < 100; i++ {
			s0 := time.Now()
			if _, err := p.SendSync(client.Message{Topic: topic, Value: cb.value}); err != nil {
				break
			}
			lat = append(lat, time.Since(s0))
		}
		p.Close()
		total := n + len(lat)

		// Consume: fanOut parallel consumers, each reading the whole
		// partition through a bounded fetch window.
		startC := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, fanOut)
		for f := 0; f < fanOut; f++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				cons := s.NewConsumer(client.ConsumerConfig{MaxBytes: fetchWindow})
				defer cons.Close()
				if err := cons.Assign(topic, 0, client.StartEarliest); err != nil {
					errs[f] = err
					return
				}
				got := 0
				deadline := time.Now().Add(120 * time.Second)
				for got < total && time.Now().Before(deadline) {
					msgs, err := cons.Poll(100 * time.Millisecond)
					if err != nil {
						errs[f] = err
						return
					}
					got += len(msgs)
				}
				if got < total {
					errs[f] = fmt.Errorf("consumer %d drained %d/%d", f, got, total)
				}
			}(f)
		}
		wg.Wait()
		consumeDur := time.Since(startC)
		for _, err := range errs {
			if err != nil {
				t.Notes = append(t.Notes, "consume failed: "+err.Error())
				return t
			}
		}

		produced := float64(total)
		consumed := float64(total * fanOut)
		produceRate := produced / produceDur.Seconds()
		consumeRate := consumed / consumeDur.Seconds()
		// End-to-end: all records moved through the pipeline over the
		// total produce+consume wall time.
		e2eRate := (produced + consumed) / (produceDur + consumeDur).Seconds()
		logicalMB := (produced + consumed) * valueBytes / (1 << 20) / (produceDur + consumeDur).Seconds()

		name := fmt.Sprintf("%s/%s", cb.payload, record.Codec(cb.codec))
		t.Rows = append(t.Rows, []string{
			cb.payload, record.Codec(cb.codec).String(),
			fmt.Sprintf("%.1f", produceRate/1000),
			fmt.Sprintf("%.1f", consumeRate/1000),
			fmt.Sprintf("%.1f", e2eRate/1000),
			fmt.Sprintf("%.1f", logicalMB),
			ms(lat.p(0.5)), ms(lat.p(0.99)),
		})
		t.Results = append(t.Results, Result{
			Name:          name,
			RecordsPerSec: e2eRate,
			MBPerSec:      logicalMB,
			P50Ms:         float64(lat.p(0.5)) / float64(time.Millisecond),
			P99Ms:         float64(lat.p(0.99)) / float64(time.Millisecond),
			Extra: map[string]string{
				"produce_records_per_sec": fmt.Sprintf("%.0f", produceRate),
				"consume_records_per_sec": fmt.Sprintf("%.0f", consumeRate),
				"records":                 fmt.Sprint(total),
				"fan_out":                 fmt.Sprint(fanOut),
				"value_bytes":             fmt.Sprint(valueBytes),
				"fetch_window_bytes":      fmt.Sprint(fetchWindow),
			},
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d records x %dB values, fetch window %dKiB, consume fan-out %d", n, valueBytes, fetchWindow>>10, fanOut),
		"brokers run the §4.1 page-cache model (2MB/partition, 150µs/page ≈ 2015-era spinning disk): cold fan-out scans pay per page touched",
		"expected shape: compressible+codec beats codec-off by >=2x end to end; incompressible codec-off unharmed (sealed pass-through does strictly less work than the old decode+re-encode produce path)")
	return t
}

package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/workload"
)

// E19NoisyNeighbor measures the multi-tenant isolation the broker quotas
// buy (§3.2/§4.4 "ETL-as-a-service"): a victim tenant's produce latency is
// sampled three ways — unloaded, under an unthrottled aggressor flooding
// the same partition leader with large values, and under the same flood
// with a produce-byte quota on the aggressor. The target shape: without
// quotas the victim's p99 degrades with the aggressor's volume; with
// quotas the aggressor is paced by ThrottleTimeMs backpressure (honored
// client-side) and the victim's p99 returns to within 2x its unloaded
// baseline.
func E19NoisyNeighbor(scale Scale) Table {
	t := Table{
		ID:      "E19",
		Title:   "noisy neighbor: victim produce latency with and without broker quotas",
		Claim:   "§3.2/§4.4: many teams share one nearline stack as a service, so a runaway producer must not degrade co-located tenants; per-principal rate quotas with client-honored backpressure bound the interference",
		Headers: []string{"phase", "victim produces", "victim p50 ms", "victim p99 ms", "aggressor MB/s"},
	}
	s, err := newStack(1, nil)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer s.Shutdown()
	const topic = "shared"
	if err := s.CreateFeed(topic, 1, 1); err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}

	const (
		victimID  = "tenant-victim"
		aggrID    = "tenant-aggr"
		aggrBytes = 64 << 10
		quotaBps  = 64 << 10 // aggressor budget once quotas are on: one large append per second
	)
	victimCli, err := s.NewClient(victimID)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer victimCli.Close()
	victim := client.NewProducer(victimCli, client.ProducerConfig{})
	defer victim.Close()
	aggrCli, err := s.NewClient(aggrID)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer aggrCli.Close()
	aggr := client.NewProducer(aggrCli, client.ProducerConfig{})
	defer aggr.Close()

	// Payloads come from the multi-tenant workload generator: one stream
	// per tenant, deterministic under the seed.
	var genMu sync.Mutex
	victimGen := workload.NewMultiTenant(workload.MultiTenantConfig{
		Seed:    19,
		Tenants: []workload.TenantSpec{{ID: victimID, ValueBytes: 100}},
	})
	aggrGen := workload.NewMultiTenant(workload.MultiTenantConfig{
		Seed:    191,
		Tenants: []workload.TenantSpec{{ID: aggrID, ValueBytes: aggrBytes}},
	})

	// The victim is a modest tenant: probes are paced a few ms apart, and
	// each loaded phase runs for a minimum window so the aggressor-rate
	// measurement spans several quota refill periods, not microseconds.
	n := scale.pick(120, 600)
	minWindow := scale.pick(1, 3)
	measureVictim := func(pinWindow bool) (durations, time.Duration) {
		var lat durations
		window := time.Duration(0)
		if pinWindow {
			window = time.Duration(minWindow) * time.Second
		}
		start := time.Now()
		for i := 0; (len(lat) < n || time.Since(start) < window) && i < n*100; i++ {
			genMu.Lock()
			ev := victimGen.Next()
			genMu.Unlock()
			t0 := time.Now()
			if _, err := victim.SendSync(client.Message{Topic: topic, Key: []byte(ev.Tenant), Value: ev.Payload}); err == nil {
				lat = append(lat, time.Since(t0))
			}
			time.Sleep(2 * time.Millisecond)
		}
		return lat, time.Since(start)
	}

	// Phase 1 — unloaded baseline.
	baseline, baseDur := measureVictim(false)

	// Start the aggressor flood: G goroutines producing large values in a
	// tight loop on the victim's partition leader.
	var aggrAcked atomic.Int64
	stopFlood := make(chan struct{})
	var floodWG sync.WaitGroup
	const floodGoroutines = 4
	for g := 0; g < floodGoroutines; g++ {
		floodWG.Add(1)
		go func() {
			defer floodWG.Done()
			for {
				select {
				case <-stopFlood:
					return
				default:
				}
				genMu.Lock()
				ev := aggrGen.Next()
				genMu.Unlock()
				if _, err := aggr.SendSync(client.Message{Topic: topic, Key: []byte(ev.Tenant), Value: ev.Payload}); err == nil {
					aggrAcked.Add(int64(len(ev.Payload)))
				}
			}
		}()
	}

	// Phase 2 — flood, quotas off: the aggressor runs at whatever rate the
	// leader absorbs.
	time.Sleep(200 * time.Millisecond) // let the flood reach steady state
	floodMark := aggrAcked.Load()
	floodStart := time.Now()
	flood, _ := measureVictim(true)
	floodDur := time.Since(floodStart)
	floodRate := float64(aggrAcked.Load()-floodMark) / floodDur.Seconds() / (1 << 20)

	// Phase 3 — flood, quota on: same flood, but the aggressor principal
	// is held to quotaBps. The broker charges and answers immediately; the
	// aggressor's own client honors the ThrottleTimeMs verdicts.
	stopAggressor := func() {
		close(stopFlood)
		// Close before waiting: a flood goroutine can be deep in a
		// throttle await (verdicts reach 30s by now) and only the
		// producer's done channel releases it promptly.
		aggr.Close()
		floodWG.Wait()
	}
	if err := s.SetQuota(aggrID, cluster.QuotaConfig{ProduceBytesPerSec: quotaBps}); err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		stopAggressor()
		return t
	}
	time.Sleep(500 * time.Millisecond) // drain the pre-quota burst
	quotaMark := aggrAcked.Load()
	quotaStart := time.Now()
	quotaOn, _ := measureVictim(true)
	quotaDur := time.Since(quotaStart)
	quotaRate := float64(aggrAcked.Load()-quotaMark) / quotaDur.Seconds() / (1 << 20)
	stopAggressor()
	throttled := aggr.Throttled()

	row := func(phase string, lat durations, rate float64) []string {
		return []string{phase, fmt.Sprint(len(lat)), ms(lat.p(0.5)), ms(lat.p(0.99)), fmt.Sprintf("%.1f", rate)}
	}
	t.Rows = append(t.Rows,
		row("unloaded baseline", baseline, 0),
		row("flood, quotas off", flood, floodRate),
		row("flood, quota "+fmt.Sprint(quotaBps>>10)+"KiB/s", quotaOn, quotaRate),
	)
	result := func(name string, lat durations, dur time.Duration, extra map[string]string) Result {
		return Result{
			Name:          name,
			RecordsPerSec: float64(len(lat)) / dur.Seconds(),
			P50Ms:         float64(lat.p(0.5)) / float64(time.Millisecond),
			P99Ms:         float64(lat.p(0.99)) / float64(time.Millisecond),
			Extra:         extra,
		}
	}
	ratio := func(lat durations) string {
		if baseline.p(0.99) == 0 {
			return "inf"
		}
		return fmt.Sprintf("%.2f", float64(lat.p(0.99))/float64(baseline.p(0.99)))
	}
	t.Results = append(t.Results,
		result("baseline", baseline, baseDur, nil),
		result("flood-no-quota", flood, floodDur, map[string]string{
			"aggressor_mb_per_sec":   fmt.Sprintf("%.1f", floodRate),
			"victim_p99_vs_baseline": ratio(flood),
		}),
		result("flood-quota-on", quotaOn, quotaDur, map[string]string{
			"aggressor_mb_per_sec":    fmt.Sprintf("%.1f", quotaRate),
			"victim_p99_vs_baseline":  ratio(quotaOn),
			"quota_bytes_per_sec":     fmt.Sprint(quotaBps),
			"aggressor_throttles":     fmt.Sprint(throttled.Count),
			"aggressor_throttled_for": throttled.Delay.Round(time.Millisecond).String(),
		}),
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("aggressor: %d goroutines x %dKiB values on the victim's partition; throttled %d times for %s total once the quota was on",
			floodGoroutines, aggrBytes>>10, throttled.Count, throttled.Delay.Round(time.Millisecond)),
		"expected shape: flood degrades victim p99 unboundedly; with the quota on, victim p99 returns to within 2x the unloaded baseline while the aggressor is held near its budget")
	return t
}

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/isolation"
	"repro/internal/mapreduce"
	"repro/internal/processing"
	"repro/internal/workload"
)

// passThroughTask forwards messages to the next stage's topic.
type passThroughTask struct {
	next string
}

func (p passThroughTask) Process(msg client.Message, _ *processing.TaskContext, out *processing.Collector) error {
	// A token normalisation step, so each stage does real work.
	v := strings.ToUpper(string(msg.Value))
	return out.Send(p.next, msg.Key, []byte(v))
}

// E1PipelineLatency is the headline experiment (Fig. 1, §1–§2): the
// end-to-end latency of a k-stage ETL pipeline on Liquid's nearline path
// versus the same pipeline as chained MapReduce jobs over the DFS.
func E1PipelineLatency(scale Scale) Table {
	t := Table{
		ID:      "E1",
		Title:   "nearline vs MR/DFS pipeline latency",
		Claim:   "Fig.1/§1: DFS-based stacks pay high per-stage latency; Liquid is low-latency by default",
		Headers: []string{"stages", "liquid p50 ms", "liquid p99 ms", "mr/dfs ms", "speedup"},
	}
	stages := []int{1, 2, 3, 4}
	if scale.Quick {
		stages = []int{1, 2}
	}
	probes := scale.pick(10, 30)

	s, err := newStack(1, nil)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer s.Shutdown()

	// The MR baseline runs over a DFS with production-like costs and a
	// modest 250ms scheduler delay per phase (far kinder than the
	// minutes-scale batch scheduling of real deployments).
	fsDir, err := os.MkdirTemp("", "e1-dfs-")
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer os.RemoveAll(fsDir)
	fs, err := dfs.Open(dfs.Config{Dir: fsDir, ChunkBytes: 1 << 20, Cost: dfs.ProductionModel()})
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer fs.Close()
	engine := mapreduce.NewEngine(fs, mapreduce.EngineConfig{SchedulerDelay: 250 * time.Millisecond})

	for _, k := range stages {
		// ---- Liquid: k chained jobs over topics t0..tk.
		topics := make([]string, k+1)
		for i := range topics {
			topics[i] = fmt.Sprintf("e1-s%d-t%d", k, i)
			if err := s.CreateFeed(topics[i], 1, 1); err != nil {
				t.Notes = append(t.Notes, "failed: "+err.Error())
				return t
			}
		}
		jobs := make([]*processing.Job, 0, k)
		for i := 0; i < k; i++ {
			job, err := s.RunJob(processing.JobConfig{
				Name:   fmt.Sprintf("e1-%d-stage%d", k, i),
				Inputs: []string{topics[i]},
				Factory: func(next string) processing.TaskFactory {
					return func() processing.StreamTask { return passThroughTask{next: next} }
				}(topics[i+1]),
				PollWait: 20 * time.Millisecond,
			})
			if err != nil {
				t.Notes = append(t.Notes, "job failed: "+err.Error())
				return t
			}
			jobs = append(jobs, job)
		}
		p := s.NewProducer(client.ProducerConfig{Linger: time.Millisecond})
		cons := s.NewConsumer(client.ConsumerConfig{})
		cons.Assign(topics[k], 0, client.StartLatest)
		var lat durations
		for i := 0; i < probes; i++ {
			start := time.Now()
			if _, err := p.SendSync(client.Message{Topic: topics[0], Value: []byte(fmt.Sprintf("probe-%d", i))}); err != nil {
				continue
			}
			deadline := time.Now().Add(15 * time.Second)
			got := false
			for !got && time.Now().Before(deadline) {
				msgs, err := cons.Poll(time.Second)
				if err != nil {
					continue
				}
				for _, m := range msgs {
					if strings.HasPrefix(string(m.Value), "PROBE-") {
						got = true
					}
				}
			}
			if got {
				lat = append(lat, time.Since(start))
			}
		}
		p.Close()
		cons.Close()
		for _, j := range jobs {
			j.Stop()
		}

		// ---- MR/DFS: identity pipeline of k stages over the probe file.
		inPrefix := fmt.Sprintf("/e1/%d/in/", k)
		fs.WriteFile(inPrefix+"events", mapreduce.EncodeLines([]mapreduce.KV{
			{Key: "probe", Value: "probe-data"},
		}))
		specs := make([]mapreduce.JobSpec, k)
		for i := range specs {
			specs[i] = mapreduce.JobSpec{
				Name:        fmt.Sprintf("e1mr-%d-%d", k, i),
				InputPrefix: inPrefix,
				OutputDir:   fmt.Sprintf("/e1/%d/out%d", k, i),
				NumReducers: 1,
				Map: func(key, value string, emit func(k, v string)) error {
					emit(key, strings.ToUpper(value))
					return nil
				},
			}
		}
		mrStart := time.Now()
		if _, err := engine.RunPipeline(mapreduce.Pipeline{Stages: specs}); err != nil {
			t.Notes = append(t.Notes, "mr pipeline failed: "+err.Error())
			return t
		}
		mrDur := time.Since(mrStart)

		speedup := float64(mrDur) / float64(lat.p(0.5))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), ms(lat.p(0.5)), ms(lat.p(0.99)),
			ms(mrDur), fmt.Sprintf("%.0fx", speedup),
		})
	}
	t.Notes = append(t.Notes,
		"MR numbers are charitable: data is assumed to arrive exactly when the pipeline starts;",
		"real batch deployments add scheduling wait (minutes to hours) on top",
		"expected shape: Liquid flat in ms; MR grows linearly with stages; gap widens with depth")
	return t
}

// statsTask counts records per key in local state — the periodic
// statistics job of §4.2's motivating example.
type statsTask struct{}

func (statsTask) Process(msg client.Message, ctx *processing.TaskContext, _ *processing.Collector) error {
	store := ctx.Store("stats")
	n := 0
	if v, ok, err := store.Get(msg.Key); err != nil {
		return err
	} else if ok {
		n, _ = strconv.Atoi(string(v))
	}
	return store.Put(msg.Key, []byte(strconv.Itoa(n+1)))
}

// E5Incremental validates §4.2: with checkpoints in the offset manager, a
// periodic statistics job processes only new data, so update cost tracks
// the delta, not the total.
func E5Incremental(scale Scale) Table {
	t := Table{
		ID:      "E5",
		Title:   "incremental vs from-scratch processing",
		Claim:   "§4.2: reading all data each round grows linearly; incremental reads only the delta",
		Headers: []string{"round", "total records", "from-scratch processed", "incremental processed"},
	}
	s, err := newStack(1, nil)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer s.Shutdown()
	if err := s.CreateFeed("profiles", 1, 1); err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	base := scale.pick(2000, 20000)
	delta := base / 20 // 5% of profiles change per period (§4.2)
	rounds := 4

	runJob := func(name string, fresh bool) (processed int64, err error) {
		cfg := processing.JobConfig{
			Name:               name,
			Inputs:             []string{"profiles"},
			Factory:            func() processing.StreamTask { return statsTask{} },
			Stores:             []processing.StoreSpec{{Name: "stats", NoChangelog: fresh}},
			CheckpointInterval: 100 * time.Millisecond,
			PollWait:           20 * time.Millisecond,
		}
		if fresh {
			// From-scratch: forget checkpoints by using a new group each
			// round (name carries a nonce) and re-reading from earliest.
			cfg.StartFrom = client.StartEarliest
		}
		job, err := s.RunJob(cfg)
		if err != nil {
			return 0, err
		}
		c := job.Metrics().Counter(name + ".processed")
		// Drain until the counter stops moving.
		last := int64(-1)
		for i := 0; i < 400; i++ {
			time.Sleep(25 * time.Millisecond)
			cur := c.Value()
			if cur == last && cur > 0 {
				break
			}
			last = cur
		}
		job.Stop()
		return c.Value(), nil
	}

	gen := workload.NewProfile(workload.ProfileConfig{Seed: 5}, time.Now().UnixMilli())
	produce := func(n int) error {
		p := s.NewProducer(client.ProducerConfig{})
		defer p.Close()
		for i := 0; i < n; i++ {
			upd := gen.Next()
			if err := p.Send(client.Message{Topic: "profiles", Key: []byte(upd.UserID), Value: upd.Encode()}); err != nil {
				return err
			}
		}
		return p.Flush()
	}
	if err := produce(base); err != nil {
		t.Notes = append(t.Notes, "produce failed: "+err.Error())
		return t
	}
	total := base
	for round := 1; round <= rounds; round++ {
		if round > 1 {
			if err := produce(delta); err != nil {
				t.Notes = append(t.Notes, "produce failed: "+err.Error())
				return t
			}
			total += delta
		}
		scratch, err := runJob(fmt.Sprintf("scratch-r%d", round), true)
		if err != nil {
			t.Notes = append(t.Notes, "scratch job failed: "+err.Error())
			return t
		}
		incr, err := runJob("incremental", false)
		if err != nil {
			t.Notes = append(t.Notes, "incremental job failed: "+err.Error())
			return t
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(round), fmt.Sprint(total), fmt.Sprint(scratch), fmt.Sprint(incr),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("base %d records, +%d (5%%) per round", base, delta),
		"expected shape: from-scratch column grows with the total; incremental stays at the delta")
	return t
}

// hogTask burns CPU per message — the runaway ETL job of §4.4.
type hogTask struct {
	burn time.Duration
}

func (h hogTask) Process(client.Message, *processing.TaskContext, *processing.Collector) error {
	start := time.Now()
	x := 0
	for time.Since(start) < h.burn {
		x++
	}
	_ = x
	return nil
}

// echoTask forwards input to an output topic (the latency-sensitive
// victim).
type echoTask struct{ out string }

func (e echoTask) Process(msg client.Message, _ *processing.TaskContext, out *processing.Collector) error {
	return out.Send(e.out, msg.Key, msg.Value)
}

// E8Isolation validates §4.4 (ETL-as-a-service): without isolation a
// resource-hungry job degrades a co-located latency-sensitive job; with
// the per-job governor it cannot.
func E8Isolation(scale Scale) Table {
	t := Table{
		ID:      "E8",
		Title:   "resource isolation between co-located jobs",
		Claim:   "§4.4: per-job resource control keeps a runaway job from degrading neighbours",
		Headers: []string{"configuration", "victim p50 ms", "victim p99 ms"},
	}
	probes := scale.pick(15, 40)

	run := func(label string, governed bool) []string {
		s, err := newStack(1, nil)
		if err != nil {
			return []string{label, "error", err.Error()}
		}
		defer s.Shutdown()
		for _, feed := range []string{"victim-in", "victim-out", "hog-in"} {
			if err := s.CreateFeed(feed, 1, 1); err != nil {
				return []string{label, "error", err.Error()}
			}
		}
		var gov *isolation.Governor
		if governed {
			gov = isolation.New(isolation.Config{CPUShare: 0.10, Burst: 5 * time.Millisecond})
		}
		if _, err := s.RunJob(processing.JobConfig{
			Name:     "hog",
			Inputs:   []string{"hog-in"},
			Factory:  func() processing.StreamTask { return hogTask{burn: 5 * time.Millisecond} },
			Governor: gov,
			PollWait: 10 * time.Millisecond,
		}); err != nil {
			return []string{label, "error", err.Error()}
		}
		if _, err := s.RunJob(processing.JobConfig{
			Name:     "victim",
			Inputs:   []string{"victim-in"},
			Factory:  func() processing.StreamTask { return echoTask{out: "victim-out"} },
			PollWait: 10 * time.Millisecond,
		}); err != nil {
			return []string{label, "error", err.Error()}
		}

		// Saturate the hog's input.
		hogP := s.NewProducer(client.ProducerConfig{})
		defer hogP.Close()
		for i := 0; i < 2000; i++ {
			hogP.Send(client.Message{Topic: "hog-in", Value: []byte("work")})
		}
		hogP.Flush()
		time.Sleep(100 * time.Millisecond) // let the hog get going

		p := s.NewProducer(client.ProducerConfig{Linger: time.Millisecond})
		defer p.Close()
		cons := s.NewConsumer(client.ConsumerConfig{})
		defer cons.Close()
		cons.Assign("victim-out", 0, client.StartLatest)
		var lat durations
		for i := 0; i < probes; i++ {
			start := time.Now()
			if _, err := p.SendSync(client.Message{Topic: "victim-in", Value: []byte(fmt.Sprintf("p%d", i))}); err != nil {
				continue
			}
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				msgs, err := cons.Poll(500 * time.Millisecond)
				if err != nil {
					continue
				}
				if len(msgs) > 0 {
					lat = append(lat, time.Since(start))
					break
				}
			}
		}
		return []string{label, ms(lat.p(0.5)), ms(lat.p(0.99))}
	}
	t.Rows = append(t.Rows, run("no isolation (hog unbounded)", false))
	t.Rows = append(t.Rows, run("governed (hog capped at 10% CPU)", true))
	t.Notes = append(t.Notes,
		"hog burns 5ms CPU per message on a saturated input",
		"expected shape: victim latency degraded without isolation, restored with the governor")
	return t
}

// E12UseCases runs the site-speed use case end to end (§5.1): time from a
// degradation beginning to the anomaly being visible in the derived feed,
// nearline vs the MR/DFS batch path.
func E12UseCases(scale Scale) Table {
	t := Table{
		ID:      "E12",
		Title:   "use case: site-speed anomaly detection latency",
		Claim:   "§5.1: anomalies detected within minutes instead of hours; here nearline seconds vs batch",
		Headers: []string{"path", "detection latency"},
	}
	events := scale.pick(3000, 20000)

	// ---- Nearline path.
	s, err := newStack(1, nil)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer s.Shutdown()
	for _, feed := range []string{"rum", "rum-agg"} {
		if err := s.CreateFeed(feed, 1, 1); err != nil {
			t.Notes = append(t.Notes, "failed: "+err.Error())
			return t
		}
	}
	if _, err := s.RunJob(processing.JobConfig{
		Name:           "sitespeed",
		Inputs:         []string{"rum"},
		Factory:        func() processing.StreamTask { return &rumAggBenchTask{} },
		WindowInterval: 200 * time.Millisecond,
		PollWait:       20 * time.Millisecond,
	}); err != nil {
		t.Notes = append(t.Notes, "job failed: "+err.Error())
		return t
	}
	gen := workload.NewRUM(workload.RUMConfig{Seed: 1, SlowCDN: "cdn-beta"}, time.Now().UnixMilli())
	p := s.NewProducer(client.ProducerConfig{})
	start := time.Now()
	go func() {
		defer p.Close()
		for i := 0; i < events; i++ {
			ev := gen.Next()
			p.Send(client.Message{Topic: "rum", Key: []byte(ev.SessionID), Value: ev.Encode()})
		}
		p.Flush()
	}()
	cons := s.NewConsumer(client.ConsumerConfig{})
	defer cons.Close()
	cons.Assign("rum-agg", 0, client.StartEarliest)
	var nearline time.Duration
	deadline := time.Now().Add(30 * time.Second)
	for nearline == 0 && time.Now().Before(deadline) {
		msgs, err := cons.Poll(300 * time.Millisecond)
		if err != nil {
			continue
		}
		for _, m := range msgs {
			var agg map[string]any
			if json.Unmarshal(m.Value, &agg) != nil {
				continue
			}
			if mean, ok := agg["meanLoadMs"].(float64); ok && mean > 600 {
				nearline = time.Since(start)
				break
			}
		}
	}

	// ---- Batch path: the same events accumulate in the DFS; an hourly
	// aggregation job runs over them. The detection latency is the batch
	// period (when the data lands just after a run) plus the job; we
	// charge only HALF the period (the average case) plus the job.
	fsDir, _ := os.MkdirTemp("", "e12-")
	defer os.RemoveAll(fsDir)
	fs, err := dfs.Open(dfs.Config{Dir: fsDir, ChunkBytes: 1 << 20, Cost: dfs.ProductionModel()})
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer fs.Close()
	gen2 := workload.NewRUM(workload.RUMConfig{Seed: 1, SlowCDN: "cdn-beta"}, time.Now().UnixMilli())
	var lines []mapreduce.KV
	for i := 0; i < events; i++ {
		ev := gen2.Next()
		lines = append(lines, mapreduce.KV{Key: ev.CDN, Value: strconv.FormatInt(ev.LoadMs, 10)})
	}
	fs.WriteFile("/rum/events", mapreduce.EncodeLines(lines))
	engine := mapreduce.NewEngine(fs, mapreduce.EngineConfig{SchedulerDelay: 250 * time.Millisecond})
	mrStart := time.Now()
	_, err = engine.Run(mapreduce.JobSpec{
		Name: "rum-batch", InputPrefix: "/rum/", OutputDir: "/rum-out",
		Reduce: func(key string, values []string, emit func(k, v string)) error {
			var sum, n int64
			for _, v := range values {
				x, _ := strconv.ParseInt(v, 10, 64)
				sum += x
				n++
			}
			emit(key, strconv.FormatInt(sum/n, 10))
			return nil
		},
	})
	if err != nil {
		t.Notes = append(t.Notes, "mr failed: "+err.Error())
		return t
	}
	jobDur := time.Since(mrStart)
	const batchPeriod = time.Hour
	batchLatency := batchPeriod/2 + jobDur

	t.Rows = append(t.Rows,
		[]string{"liquid nearline", nearline.Round(time.Millisecond).String()},
		[]string{"mr/dfs batch (hourly job)", fmt.Sprintf("%s (= period/2 + %s job)", batchLatency.Round(time.Second), jobDur.Round(time.Millisecond))},
	)
	t.Notes = append(t.Notes, "expected shape: seconds vs tens of minutes — the paper's minutes-not-hours claim")
	return t
}

// rumAggBenchTask is the windowed CDN aggregator used by E12.
type rumAggBenchTask struct {
	counts map[string]int64
	sums   map[string]int64
}

func (t *rumAggBenchTask) Init(*processing.TaskContext) error {
	t.counts = make(map[string]int64)
	t.sums = make(map[string]int64)
	return nil
}

func (t *rumAggBenchTask) Process(msg client.Message, _ *processing.TaskContext, _ *processing.Collector) error {
	ev, err := workload.DecodeRUM(msg.Value)
	if err != nil {
		return nil
	}
	t.counts[ev.CDN]++
	t.sums[ev.CDN] += ev.LoadMs
	return nil
}

func (t *rumAggBenchTask) Window(_ *processing.TaskContext, out *processing.Collector) error {
	for cdn, n := range t.counts {
		if n < 20 {
			continue
		}
		b, _ := json.Marshal(map[string]any{"cdn": cdn, "meanLoadMs": t.sums[cdn] / n, "count": n})
		if err := out.Send("rum-agg", []byte(cdn), b); err != nil {
			return err
		}
	}
	t.counts = make(map[string]int64)
	t.sums = make(map[string]int64)
	return nil
}

// E13StateRecovery validates §3.2's changelog mechanism: restore time
// after a failure scales with state size, and compaction bounds it by
// key count rather than update count.
func E13StateRecovery(scale Scale) Table {
	t := Table{
		ID:      "E13",
		Title:   "stateful job recovery from changelog",
		Claim:   "§3.2/§4.1: state is reconstructed from the changelog; compaction accelerates recovery",
		Headers: []string{"keys", "updates", "changelog compacted", "restored records", "restore ms"},
	}
	cases := []struct{ keys, updates int }{
		{1000, 10000},
		{1000, 50000},
	}
	if scale.Quick {
		cases = []struct{ keys, updates int }{{200, 2000}}
	}
	for _, tc := range cases {
		for _, compacted := range []bool{false, true} {
			s, err := newStack(1, func(c *core.Config) {
				// Small segments so the changelog rolls and its inactive
				// segments become compactable.
				c.DefaultSegmentBytes = 16 << 10
				if compacted {
					c.CompactionInterval = 200 * time.Millisecond
				}
			})
			if err != nil {
				t.Notes = append(t.Notes, "failed: "+err.Error())
				return t
			}
			if err := s.CreateFeed("updates", 1, 1); err != nil {
				s.Shutdown()
				t.Notes = append(t.Notes, "failed: "+err.Error())
				return t
			}
			cfg := processing.JobConfig{
				Name:               "recov",
				Inputs:             []string{"updates"},
				Factory:            func() processing.StreamTask { return statsTask{} },
				Stores:             []processing.StoreSpec{{Name: "stats"}},
				CheckpointInterval: 100 * time.Millisecond,
				PollWait:           20 * time.Millisecond,
			}
			job, err := s.RunJob(cfg)
			if err != nil {
				s.Shutdown()
				t.Notes = append(t.Notes, "job failed: "+err.Error())
				return t
			}
			p := s.NewProducer(client.ProducerConfig{BatchBytes: 256 << 10})
			for i := 0; i < tc.updates; i++ {
				p.Send(client.Message{
					Topic: "updates",
					Key:   []byte(fmt.Sprintf("k%d", i%tc.keys)),
					Value: []byte("u"),
				})
			}
			p.Flush()
			p.Close()
			c := job.Metrics().Counter("recov.processed")
			deadline := time.Now().Add(120 * time.Second)
			for c.Value() < int64(tc.updates) && time.Now().Before(deadline) {
				time.Sleep(25 * time.Millisecond)
			}
			job.Stop()
			if compacted {
				// Give the background cleaner a couple of cycles.
				time.Sleep(700 * time.Millisecond)
			}

			// "Failure": start a fresh job incarnation; it must restore
			// state from the changelog before resuming.
			job2, err := s.RunJob(cfg)
			if err != nil {
				s.Shutdown()
				t.Notes = append(t.Notes, "restart failed: "+err.Error())
				return t
			}
			deadline = time.Now().Add(60 * time.Second)
			reg := job2.Metrics()
			for reg.Counter("recov.restores").Value() == 0 && time.Now().Before(deadline) {
				time.Sleep(20 * time.Millisecond)
			}
			restored := reg.Counter("recov.restored.records").Value()
			restoreNs := reg.Histogram("recov.restore.ns").Max()
			job2.Stop()
			s.Shutdown()

			t.Rows = append(t.Rows, []string{
				fmt.Sprint(tc.keys), fmt.Sprint(tc.updates),
				fmt.Sprint(compacted), fmt.Sprint(restored),
				ms(time.Duration(restoreNs)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: uncompacted restores replay every update; compacted replays ~one record per key")
	return t
}

package archive

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/storage/record"
)

func archRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Offset:    int64(i * 2), // gaps: compaction survivors
			Timestamp: int64(1000 + i),
			Key:       []byte{byte('k'), byte(i)},
			Value:     bytes.Repeat([]byte("segment-payload-"), 4),
			Headers:   []record.Header{{Key: "h", Value: []byte{byte(i)}}},
		}
	}
	return recs
}

func TestSegmentCompressedRoundTrip(t *testing.T) {
	recs := archRecords(16)
	for _, codec := range []record.Codec{record.CodecNone, record.CodecGzip, record.CodecFlate} {
		data, err := EncodeSegmentCodec(recs, codec)
		if err != nil {
			t.Fatalf("%s: encode: %v", codec, err)
		}
		got, err := DecodeSegment(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", codec, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("%s: %d records, want %d", codec, len(got), len(recs))
		}
		for i := range recs {
			if got[i].Offset != recs[i].Offset || !bytes.Equal(got[i].Value, recs[i].Value) ||
				!bytes.Equal(got[i].Key, recs[i].Key) || got[i].Timestamp != recs[i].Timestamp {
				t.Fatalf("%s: record %d mismatch", codec, i)
			}
		}
	}
}

func TestSegmentCompressionShrinks(t *testing.T) {
	recs := archRecords(256)
	plain, _ := EncodeSegmentCodec(recs, record.CodecNone)
	packed, err := EncodeSegmentCodec(recs, record.CodecFlate)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) >= len(plain)/2 {
		t.Fatalf("compressed segment %dB not < half of %dB", len(packed), len(plain))
	}
}

func TestSegmentOldFormatStillDecodes(t *testing.T) {
	// EncodeSegment writes the classic LIQARCH1 format; archives written
	// before compression existed must keep decoding.
	recs := archRecords(4)
	data := EncodeSegment(recs)
	if !bytes.Equal(data[:8], []byte("LIQARCH1")) {
		t.Fatalf("EncodeSegment magic = %q", data[:8])
	}
	got, err := DecodeSegment(data)
	if err != nil || len(got) != 4 {
		t.Fatalf("decode old format: %d records, %v", len(got), err)
	}
}

func TestCorruptCompressedSegmentRejected(t *testing.T) {
	data, err := EncodeSegmentCodec(archRecords(8), record.CodecGzip)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)-4] ^= 0xFF
	if _, err := DecodeSegment(bad); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("corrupt compressed segment decoded: %v", err)
	}
}

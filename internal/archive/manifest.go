package archive

import (
	"encoding/json"
	"errors"
	"fmt"
	"path"
	"strconv"
	"strings"
	"time"

	"repro/internal/dfs"
)

// manifestKeep bounds how many historical manifest versions survive a
// commit; older versions are pruned best-effort.
const manifestKeep = 3

// SegmentInfo is one committed segment in a partition's manifest.
type SegmentInfo struct {
	// Path is the segment's DFS path.
	Path string `json:"path"`
	// BaseOffset / LastOffset bound the feed offsets the segment holds.
	BaseOffset int64 `json:"baseOffset"`
	LastOffset int64 `json:"lastOffset"`
	// Records / Bytes size the segment.
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	// FirstTimestamp / LastTimestamp are the broker timestamps at the
	// segment's bounds (ms since epoch).
	FirstTimestamp int64 `json:"firstTimestamp"`
	LastTimestamp  int64 `json:"lastTimestamp"`
}

// Manifest is the committed state of one archived feed partition: the
// ordered immutable segments and the next feed offset to archive. It is the
// offline analogue of a consumer position — readers trust the manifest, and
// export resumes from NextOffset after any crash.
type Manifest struct {
	Topic      string        `json:"topic"`
	Partition  int32         `json:"partition"`
	Seq        int64         `json:"seq"`
	NextOffset int64         `json:"nextOffset"`
	Segments   []SegmentInfo `json:"segments"`
	// UpdatedAtMs is the commit wall-clock time (ms since epoch).
	UpdatedAtMs int64 `json:"updatedAtMs"`
}

// Records totals the archived record count.
func (m *Manifest) Records() int64 {
	var n int64
	for i := range m.Segments {
		n += m.Segments[i].Records
	}
	return n
}

// Bytes totals the archived segment bytes.
func (m *Manifest) Bytes() int64 {
	var n int64
	for i := range m.Segments {
		n += m.Segments[i].Bytes
	}
	return n
}

// Layout helpers. An archive root holds, per topic:
//
//	<root>/<topic>/segments/p<part>-o<base>-<last>.seg   immutable data
//	<root>/<topic>/manifest/p<part>/<seq>.json           committed manifests
//
// Segments and manifests live in disjoint subtrees so offline scans can
// List the segments prefix without tripping over metadata files.

func topicRoot(root, topic string) string {
	return path.Join("/", root, topic)
}

// SegmentsPrefix returns the DFS prefix holding a topic's segment files.
func SegmentsPrefix(root, topic string) string {
	return topicRoot(root, topic) + "/segments/"
}

// manifestPrefix returns the DFS prefix of one partition's manifests.
func manifestPrefix(root, topic string, partition int32) string {
	return fmt.Sprintf("%s/manifest/p%05d/", topicRoot(root, topic), partition)
}

// manifestsPrefix returns the DFS prefix of all partitions' manifests.
func manifestsPrefix(root, topic string) string {
	return topicRoot(root, topic) + "/manifest/"
}

// segmentPath renders a segment's committed path.
func segmentPath(root, topic string, partition int32, base, last int64) string {
	return fmt.Sprintf("%sp%05d-o%020d-%020d.seg", SegmentsPrefix(root, topic), partition, base, last)
}

// parseSegmentPath extracts partition and offset bounds from a segment
// path; ok is false for foreign files.
func parseSegmentPath(p string) (partition int32, base, last int64, ok bool) {
	name := path.Base(p)
	if !strings.HasSuffix(name, ".seg") || !strings.HasPrefix(name, "p") {
		return 0, 0, 0, false
	}
	parts := strings.Split(strings.TrimSuffix(name, ".seg"), "-")
	if len(parts) != 3 || !strings.HasPrefix(parts[1], "o") {
		return 0, 0, 0, false
	}
	pn, err1 := strconv.ParseInt(parts[0][1:], 10, 32)
	b, err2 := strconv.ParseInt(strings.TrimPrefix(parts[1], "o"), 10, 64)
	l, err3 := strconv.ParseInt(parts[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, 0, 0, false
	}
	return int32(pn), b, l, true
}

// LoadManifest reads the newest committed manifest of a partition,
// returning an empty zero-offset manifest when none exists. On a read-only
// handle, a read that loses the race with the writer's prune (the snapshot
// pointed at a manifest version that has since been retired) refreshes the
// snapshot and retries.
func LoadManifest(fs *dfs.FS, root, topic string, partition int32) (*Manifest, error) {
	prefix := manifestPrefix(root, topic, partition)
	for attempt := 0; ; attempt++ {
		infos := fs.List(prefix)
		// Committed manifests are <seq>.json; tmp files never match
		// because commit renames them away. Names zero-pad seq, so the
		// List order is commit order and the last entry is newest.
		var newest string
		for _, info := range infos {
			if strings.HasSuffix(info.Path, ".json") {
				newest = info.Path
			}
		}
		if newest == "" {
			return &Manifest{Topic: topic, Partition: partition}, nil
		}
		data, err := fs.ReadFile(newest)
		if err != nil {
			if fs.IsReadOnly() && attempt == 0 {
				if rerr := fs.Refresh(); rerr == nil {
					continue
				}
			}
			return nil, err
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("archive: manifest %s: %w", newest, err)
		}
		return &m, nil
	}
}

// commitManifest durably publishes the next manifest version: write to a
// temporary path, then atomically rename into place. A crash before the
// rename leaves the previous version authoritative; the half-written tmp
// file is swept on the next commit. Commits are fenced optimistically: a
// writer whose loaded Seq is stale (a zombie archiver rolling after its
// partition moved) gets ErrManifestConflict instead of regressing the
// manifest — the rename-refuses-to-overwrite protocol catches same-seq
// races, the explicit check catches a writer several generations behind.
func commitManifest(fs *dfs.FS, root string, m *Manifest) error {
	m.Seq++
	m.UpdatedAtMs = time.Now().UnixMilli()
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	cur, err := LoadManifest(fs, root, m.Topic, m.Partition)
	if err != nil {
		return err
	}
	if cur.Seq >= m.Seq {
		return fmt.Errorf("%w: %s/%d at seq %d, commit attempted seq %d",
			ErrManifestConflict, m.Topic, m.Partition, cur.Seq, m.Seq)
	}
	prefix := manifestPrefix(root, m.Topic, m.Partition)
	tmp := fmt.Sprintf("%stmp-%020d", prefix, m.Seq)
	final := fmt.Sprintf("%s%020d.json", prefix, m.Seq)
	// A same-seq tmp leftover from an aborted commit would block the
	// write; it is ours to sweep. The final path is NOT pre-deleted — an
	// existing one means a concurrent commit won.
	_ = fs.Delete(tmp)
	if err := fs.WriteFile(tmp, data); err != nil {
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		if errors.Is(err, dfs.ErrExists) {
			_ = fs.Delete(tmp)
			return fmt.Errorf("%w: %s/%d seq %d committed concurrently",
				ErrManifestConflict, m.Topic, m.Partition, m.Seq)
		}
		return err
	}
	// Prune old versions and stray tmp files, best-effort.
	for _, info := range fs.List(prefix) {
		if info.Path == final {
			continue
		}
		if !strings.HasSuffix(info.Path, ".json") {
			_ = fs.Delete(info.Path)
			continue
		}
		seqStr := strings.TrimSuffix(path.Base(info.Path), ".json")
		if seq, err := strconv.ParseInt(seqStr, 10, 64); err == nil && seq+manifestKeep <= m.Seq {
			_ = fs.Delete(info.Path)
		}
	}
	return nil
}

// ListManifests loads the newest manifest of every archived partition of a
// topic, sorted by partition.
func ListManifests(fs *dfs.FS, root, topic string) ([]*Manifest, error) {
	prefix := manifestsPrefix(root, topic)
	seen := make(map[int32]bool)
	var parts []int32
	for _, info := range fs.List(prefix) {
		rest := strings.TrimPrefix(info.Path, prefix)
		dir, _, ok := strings.Cut(rest, "/")
		if !ok || !strings.HasPrefix(dir, "p") {
			continue
		}
		pn, err := strconv.ParseInt(dir[1:], 10, 32)
		if err != nil || seen[int32(pn)] {
			continue
		}
		seen[int32(pn)] = true
		parts = append(parts, int32(pn))
	}
	out := make([]*Manifest, 0, len(parts))
	for _, p := range parts {
		m, err := LoadManifest(fs, root, topic, p)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoArchive, topic)
	}
	return out, nil
}

// ErrNoArchive reports an operation over a topic with no archived data.
var ErrNoArchive = errors.New("archive: topic has no archived partitions")

// ErrManifestConflict reports a manifest commit lost to a concurrent
// writer; the caller must reload the manifest before exporting further.
var ErrManifestConflict = errors.New("archive: manifest committed concurrently")

// Package archive bridges the nearline and offline stacks: it drains feed
// partitions from the messaging layer into immutable, size/time-rolled
// segment files on the DFS, tracks them in per-partition manifests committed
// by atomic rename, and checkpoints its progress through the offset manager
// with annotations recording the offset↔segment mapping (the paper's
// annotated-checkpoint mechanism, §3.1.2, applied to offline export). The
// archived layout is the single source of truth for offline consumers:
// MapReduce jobs read segments directly (MRInput), and Backfill republishes
// them into a feed for beyond-retention rewind.
package archive

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/storage/record"
)

// Errors returned by the segment codec.
var (
	// ErrBadSegment reports a segment file that fails structural checks.
	ErrBadSegment = errors.New("archive: corrupt segment")
)

// segmentMagic opens every uncompressed archived segment file.
var segmentMagic = []byte("LIQARCH1")

// segmentMagicZ opens compressed segment files: the magic is followed by a
// codec byte (record.Codec) and the codec-compressed record region. The
// archive reuses the messaging layer's codecs, so the whole pipeline —
// wire, log, DFS — shares one compression vocabulary.
var segmentMagicZ = []byte("LIQARCH2")

// Record is one archived message: the payload of a feed record plus the
// offset and timestamp the broker assigned it, so offline consumers and
// backfill can reconstruct the exact nearline stream.
type Record struct {
	Offset    int64
	Timestamp int64
	Key       []byte
	Value     []byte
	Headers   []record.Header
}

// EncodeSegment renders records into the immutable segment file format:
// a magic header followed by length-prefixed records. Offsets are stored
// explicitly (not derived from a base) so segments tolerate gaps left by
// retention or compaction in the source log.
func EncodeSegment(records []Record) []byte {
	data, err := EncodeSegmentCodec(records, record.CodecNone)
	if err != nil {
		// CodecNone cannot fail; keep the historical signature.
		panic(err)
	}
	return data
}

// EncodeSegmentCodec renders records as a segment file, compressing the
// record region with the given codec (record.CodecNone writes the classic
// uncompressed format, readable by older decoders).
func EncodeSegmentCodec(records []Record, codec record.Codec) ([]byte, error) {
	body := encodeSegmentBody(records)
	if codec == record.CodecNone {
		out := make([]byte, 0, len(segmentMagic)+len(body))
		out = append(out, segmentMagic...)
		return append(out, body...), nil
	}
	compressed, err := record.CompressRaw(codec, body)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(segmentMagicZ)+1+len(compressed))
	out = append(out, segmentMagicZ...)
	out = append(out, byte(codec))
	return append(out, compressed...), nil
}

// encodeSegmentBody renders the record region: a count followed by
// length-prefixed records.
func encodeSegmentBody(records []Record) []byte {
	var b bytes.Buffer
	var scratch [8]byte
	putI64 := func(v int64) {
		binary.BigEndian.PutUint64(scratch[:], uint64(v))
		b.Write(scratch[:])
	}
	putBytes := func(p []byte) {
		if p == nil {
			binary.BigEndian.PutUint32(scratch[:4], ^uint32(0))
			b.Write(scratch[:4])
			return
		}
		binary.BigEndian.PutUint32(scratch[:4], uint32(len(p)))
		b.Write(scratch[:4])
		b.Write(p)
	}
	binary.BigEndian.PutUint32(scratch[:4], uint32(len(records)))
	b.Write(scratch[:4])
	for i := range records {
		r := &records[i]
		putI64(r.Offset)
		putI64(r.Timestamp)
		putBytes(r.Key)
		putBytes(r.Value)
		binary.BigEndian.PutUint32(scratch[:4], uint32(len(r.Headers)))
		b.Write(scratch[:4])
		for _, h := range r.Headers {
			putBytes([]byte(h.Key))
			putBytes(h.Value)
		}
	}
	return b.Bytes()
}

// DecodeSegment parses a segment file (either format) back into records,
// decompressing transparently.
func DecodeSegment(data []byte) ([]Record, error) {
	switch {
	case len(data) >= len(segmentMagicZ)+1 && bytes.Equal(data[:len(segmentMagicZ)], segmentMagicZ):
		codec := record.Codec(data[len(segmentMagicZ)])
		body, err := record.DecompressRaw(codec, data[len(segmentMagicZ)+1:])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSegment, err)
		}
		return decodeSegmentBody(body)
	case len(data) >= len(segmentMagic)+4 && bytes.Equal(data[:len(segmentMagic)], segmentMagic):
		return decodeSegmentBody(data[len(segmentMagic):])
	}
	return nil, fmt.Errorf("%w: bad magic", ErrBadSegment)
}

// decodeSegmentBody parses the (uncompressed) record region.
func decodeSegmentBody(data []byte) ([]Record, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: truncated", ErrBadSegment)
	}
	pos := 0
	takeI64 := func() (int64, error) {
		if pos+8 > len(data) {
			return 0, fmt.Errorf("%w: truncated", ErrBadSegment)
		}
		v := int64(binary.BigEndian.Uint64(data[pos:]))
		pos += 8
		return v, nil
	}
	takeBytes := func() ([]byte, error) {
		if pos+4 > len(data) {
			return nil, fmt.Errorf("%w: truncated", ErrBadSegment)
		}
		n := binary.BigEndian.Uint32(data[pos:])
		pos += 4
		if n == ^uint32(0) {
			return nil, nil
		}
		if uint32(len(data)-pos) < n {
			return nil, fmt.Errorf("%w: truncated", ErrBadSegment)
		}
		p := data[pos : pos+int(n)]
		pos += int(n)
		return p, nil
	}
	count := binary.BigEndian.Uint32(data[pos:])
	pos += 4
	// The count is untrusted on-disk input: cap the preallocation by what
	// the remaining bytes could possibly hold (>= 28 bytes per record), so
	// a corrupt count fails the length checks below instead of OOMing.
	const minRecordBytes = 28
	capHint := int64(count)
	if maxRecords := int64(len(data)-pos) / minRecordBytes; capHint > maxRecords {
		capHint = maxRecords
	}
	out := make([]Record, 0, capHint)
	for i := uint32(0); i < count; i++ {
		var r Record
		var err error
		if r.Offset, err = takeI64(); err != nil {
			return nil, err
		}
		if r.Timestamp, err = takeI64(); err != nil {
			return nil, err
		}
		if r.Key, err = takeBytes(); err != nil {
			return nil, err
		}
		if r.Value, err = takeBytes(); err != nil {
			return nil, err
		}
		if pos+4 > len(data) {
			return nil, fmt.Errorf("%w: truncated", ErrBadSegment)
		}
		nh := binary.BigEndian.Uint32(data[pos:])
		pos += 4
		for j := uint32(0); j < nh; j++ {
			k, err := takeBytes()
			if err != nil {
				return nil, err
			}
			v, err := takeBytes()
			if err != nil {
				return nil, err
			}
			r.Headers = append(r.Headers, record.Header{Key: string(k), Value: v})
		}
		out = append(out, r)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSegment, len(data)-pos)
	}
	return out, nil
}

package archive

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/client"
	"repro/internal/dfs"
	"repro/internal/storage/record"
)

func TestSegmentCodecRoundTrip(t *testing.T) {
	in := []Record{
		{Offset: 10, Timestamp: 1111, Key: []byte("k1"), Value: []byte("v1")},
		{Offset: 11, Timestamp: 1112, Key: nil, Value: []byte("unkeyed")},
		{Offset: 13, Timestamp: 1113, Key: []byte(""), Value: nil, Headers: []record.Header{
			{Key: "liquid.lineage", Value: []byte("job-a")},
			{Key: "empty", Value: nil},
		}},
	}
	out, err := DecodeSegment(EncodeSegment(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Offset != in[i].Offset || out[i].Timestamp != in[i].Timestamp {
			t.Fatalf("record %d: got %+v want %+v", i, out[i], in[i])
		}
		if !bytes.Equal(out[i].Key, in[i].Key) || !bytes.Equal(out[i].Value, in[i].Value) {
			t.Fatalf("record %d payload mismatch", i)
		}
		if len(out[i].Headers) != len(in[i].Headers) {
			t.Fatalf("record %d: %d headers, want %d", i, len(out[i].Headers), len(in[i].Headers))
		}
	}
	// Nil key must survive as nil (distinguishes unkeyed from empty-keyed).
	if out[1].Key != nil {
		t.Fatal("nil key decoded as non-nil")
	}
	if out[2].Key == nil {
		t.Fatal("empty key decoded as nil")
	}
}

func TestSegmentCodecRejectsCorrupt(t *testing.T) {
	good := EncodeSegment([]Record{{Offset: 1, Value: []byte("x")}})
	cases := map[string][]byte{
		"bad magic":  append([]byte("NOTMAGIC"), good[8:]...),
		"truncated":  good[:len(good)-1],
		"trailing":   append(append([]byte(nil), good...), 0xFF),
		"empty file": {},
	}
	for name, data := range cases {
		if _, err := DecodeSegment(data); err == nil {
			t.Fatalf("%s: decode accepted corrupt segment", name)
		}
	}
}

func TestManifestCommitLoadPrune(t *testing.T) {
	dir := t.TempDir()
	fs, err := dfs.Open(dfs.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	m := &Manifest{Topic: "events", Partition: 3}
	for i := 0; i < manifestKeep+2; i++ {
		m.Segments = append(m.Segments, SegmentInfo{
			Path:       segmentPath("/archive", "events", 3, int64(i*10), int64(i*10+9)),
			BaseOffset: int64(i * 10), LastOffset: int64(i*10 + 9), Records: 10,
		})
		m.NextOffset = int64(i*10 + 10)
		if err := commitManifest(fs, "/archive", m); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadManifest(fs, "/archive", "events", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != int64(manifestKeep+2) || got.NextOffset != m.NextOffset || len(got.Segments) != manifestKeep+2 {
		t.Fatalf("loaded manifest = seq %d next %d segs %d", got.Seq, got.NextOffset, len(got.Segments))
	}
	// Old versions beyond the keep window are pruned.
	files := fs.List(manifestPrefix("/archive", "events", 3))
	if len(files) > manifestKeep {
		t.Fatalf("manifest dir holds %d files, want <= %d", len(files), manifestKeep)
	}
	// A partition never archived loads as the zero manifest.
	empty, err := LoadManifest(fs, "/archive", "events", 9)
	if err != nil || empty.NextOffset != 0 || len(empty.Segments) != 0 {
		t.Fatalf("empty manifest = %+v, %v", empty, err)
	}
}

func TestParseSegmentPath(t *testing.T) {
	p := segmentPath("/archive", "events", 7, 120, 199)
	part, base, last, ok := parseSegmentPath(p)
	if !ok || part != 7 || base != 120 || last != 199 {
		t.Fatalf("parse %q = %d %d %d %v", p, part, base, last, ok)
	}
	for _, bad := range []string{"/archive/events/segments/manifest.json", "/x/p1-o2.seg", "p-oX-3.seg"} {
		if _, _, _, ok := parseSegmentPath(bad); ok {
			t.Fatalf("parse accepted %q", bad)
		}
	}
}

func TestExporterRollAndRecovery(t *testing.T) {
	dir := t.TempDir()
	fs, err := dfs.Open(dfs.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	exp, err := openExporter(fs, "/archive", "t", 0, exporterConfig{segmentRecords: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !exp.add(msgAt(int64(i))) {
			t.Fatalf("offset %d rejected", i)
		}
	}
	if !exp.shouldRoll() {
		t.Fatal("5 records at SegmentRecords=5 should roll")
	}
	info, err := exp.roll()
	if err != nil {
		t.Fatal(err)
	}
	if info.BaseOffset != 0 || info.LastOffset != 4 || exp.man.NextOffset != 5 {
		t.Fatalf("rolled %+v, next %d", info, exp.man.NextOffset)
	}
	// Redelivered offsets below the manifest are dropped.
	if exp.add(msgAt(3)) {
		t.Fatal("accepted already-archived offset")
	}
	// An orphan segment beyond the manifest — and a .tmp from a roll that
	// crashed before its rename — are swept on reopen.
	orphan := segmentPath("/archive", "t", 0, 5, 9)
	if err := fs.WriteFile(orphan, EncodeSegment([]Record{{Offset: 5}})); err != nil {
		t.Fatal(err)
	}
	crashedTmp := segmentPath("/archive", "t", 0, 5, 7) + ".tmp"
	if err := fs.WriteFile(crashedTmp, []byte("half-written")); err != nil {
		t.Fatal(err)
	}
	exp2, err := openExporter(fs, "/archive", "t", 0, exporterConfig{segmentRecords: 5})
	if err != nil {
		t.Fatal(err)
	}
	if exp2.man.NextOffset != 5 {
		t.Fatalf("reopened NextOffset = %d", exp2.man.NextOffset)
	}
	if _, err := fs.Stat(orphan); err == nil {
		t.Fatal("orphan segment survived recovery")
	}
	if _, err := fs.Stat(crashedTmp); err == nil {
		t.Fatal("crashed roll tmp survived recovery")
	}
}

// msgAt builds a minimal consumed message at an offset.
func msgAt(off int64) client.Message {
	return client.Message{Topic: "t", Offset: off, Value: []byte("v")}
}

func TestManifestCommitFencing(t *testing.T) {
	dir := t.TempDir()
	fs, err := dfs.Open(dfs.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	// Two exporters for the same partition, both loaded at seq 0 — the
	// zombie-after-rebalance shape.
	expA, err := openExporter(fs, "/archive", "t", 0, exporterConfig{segmentRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	expB, err := openExporter(fs, "/archive", "t", 0, exporterConfig{segmentRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	expB.add(msgAt(0))
	if _, err := expB.roll(); err != nil {
		t.Fatal(err)
	}

	// Stale A rolls a DIFFERENT offset range: the segment rename lands
	// but the manifest seq fence must reject the commit. The uploaded
	// file is NOT withdrawn on a conflict — after the fence trips, the
	// path could in principle hold a successor's re-rolled segment
	// (sweep + re-export of the same range), and deleting it would
	// destroy manifest-referenced data. The unreferenced leftover is
	// harmless: every reader (MRInput, Backfill, ls) trusts manifests,
	// never directory listings.
	expA.add(msgAt(0))
	expA.add(msgAt(1))
	_, err = expA.roll()
	if !errors.Is(err, ErrManifestConflict) {
		t.Fatalf("stale roll (different range) = %v, want ErrManifestConflict", err)
	}
	if expA.man.Seq != 0 {
		t.Fatalf("conflicted exporter mutated its manifest to seq %d", expA.man.Seq)
	}
	// B's committed segment must be untouched by A's conflicted roll.
	if _, serr := fs.Stat(segmentPath("/archive", "t", 0, 0, 0)); serr != nil {
		t.Fatalf("winner's committed segment gone after conflicted roll: %v", serr)
	}

	// Stale A rolls the SAME range B committed: the segment rename itself
	// must refuse to overwrite and report the conflict.
	expC := &exporter{fs: fs, root: "/archive", topic: "t", partition: 0, cfg: exporterConfig{segmentRecords: 100}}
	expC.man = &Manifest{Topic: "t", Partition: 0}
	expC.add(msgAt(0))
	_, err = expC.roll()
	if !errors.Is(err, ErrManifestConflict) {
		t.Fatalf("stale roll (same range) = %v, want ErrManifestConflict", err)
	}

	// The winner's committed state survives untouched.
	man, err := LoadManifest(fs, "/archive", "t", 0)
	if err != nil || man.Seq != 1 || man.NextOffset != 1 || len(man.Segments) != 1 {
		t.Fatalf("winner's manifest = %+v, %v", man, err)
	}
	if _, err := fs.Stat(man.Segments[0].Path); err != nil {
		t.Fatalf("winner's segment gone: %v", err)
	}
}

package archive

import (
	"errors"
	"log/slog"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/dfs"
	"repro/internal/storage/record"
)

// ArchiverConfig parameterises an Archiver.
type ArchiverConfig struct {
	// Topic is the feed to archive.
	Topic string
	// FS is the destination file system.
	FS *dfs.FS
	// Root is the archive tree's DFS root (default "/archive").
	Root string
	// Name distinguishes independent archivers of one topic; it names the
	// consumer group ("__archiver-<Name>", default Name = Topic).
	Name string
	// SegmentBytes rolls a segment when its payload reaches this size
	// (default 4 MiB).
	SegmentBytes int64
	// SegmentRecords rolls a segment at this record count (0 = no bound).
	SegmentRecords int
	// FlushInterval rolls a non-empty buffer after this much time even if
	// undersized, bounding archive staleness (default 2s).
	FlushInterval time.Duration
	// Codec compresses segment files on the DFS (record.CodecNone,
	// CodecGzip or CodecFlate) — the same codec vocabulary the messaging
	// layer uses for batches. Readers (MRInput, Backfill) decompress
	// transparently, and old and new segment formats may coexist under
	// one manifest.
	Codec record.Codec
	// PollWait is the fetch long-poll bound (default 250ms).
	PollWait time.Duration
	// StartFrom applies to partitions with no committed offset and no
	// manifest (default StartEarliest).
	StartFrom int64
	// SessionTimeout / RebalanceTimeout size the consumer group protocol;
	// zero uses the client defaults.
	SessionTimeout   time.Duration
	RebalanceTimeout time.Duration
	// Logger receives operational events.
	Logger *slog.Logger
}

func (c ArchiverConfig) withDefaults() ArchiverConfig {
	if c.Root == "" {
		c.Root = "/archive"
	}
	if c.Name == "" {
		c.Name = c.Topic
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 2 * time.Second
	}
	if c.PollWait == 0 {
		c.PollWait = 250 * time.Millisecond
	}
	if c.StartFrom == 0 {
		c.StartFrom = client.StartEarliest
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// ArchiverStats summarises an archiver's progress.
type ArchiverStats struct {
	// Records / Bytes / Segments count committed archive output.
	Records  int64
	Bytes    int64
	Segments int64
	// Partitions is the current assignment size.
	Partitions int
	// CommitErrors counts failed offset checkpoints (the manifest still
	// guarantees exactly-once resume; the checkpoint lags until retried).
	CommitErrors int64
}

// Archiver continuously exports a feed into the archive tree: it joins a
// consumer group (one export task per assigned partition), drains messages
// into rolled segments, and checkpoints each roll through the offset
// manager with offset↔segment annotations. Multiple Archiver instances
// with the same Name share the group and split the partitions.
type Archiver struct {
	c   *client.Client
	cfg ArchiverConfig
	gc  *client.GroupConsumer

	exporters map[int32]*exporter // touched only by the run goroutine

	mu      sync.Mutex
	stats   ArchiverStats
	started bool
	stopped bool

	// skipCommits suppresses offset checkpoints; tests use it to model a
	// crash window between manifest commit and offset commit.
	skipCommits bool

	stop chan struct{}
	kill chan struct{}
	done chan struct{}
}

// NewArchiver creates an archiver (not yet running).
func NewArchiver(c *client.Client, cfg ArchiverConfig) (*Archiver, error) {
	cfg = cfg.withDefaults()
	if cfg.Topic == "" {
		return nil, errors.New("archive: Topic is required")
	}
	if cfg.FS == nil {
		return nil, errors.New("archive: FS is required")
	}
	return &Archiver{
		c:         c,
		cfg:       cfg,
		exporters: make(map[int32]*exporter),
		stop:      make(chan struct{}),
		kill:      make(chan struct{}),
		done:      make(chan struct{}),
	}, nil
}

// exporterConfig renders the per-partition exporter sizing.
func (a *Archiver) exporterConfig() exporterConfig {
	return exporterConfig{
		segmentBytes:   a.cfg.SegmentBytes,
		segmentRecords: a.cfg.SegmentRecords,
		flushAge:       a.cfg.FlushInterval,
		codec:          a.cfg.Codec,
	}
}

// Group returns the archiver's consumer group id.
func (a *Archiver) Group() string { return "__archiver-" + a.cfg.Name }

// Topic returns the archived feed.
func (a *Archiver) Topic() string { return a.cfg.Topic }

// Stats returns progress counters.
func (a *Archiver) Stats() ArchiverStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Start joins the group and launches the export loop.
func (a *Archiver) Start() error {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return errors.New("archive: archiver already started")
	}
	a.started = true
	a.mu.Unlock()
	gc, err := client.NewGroupConsumer(a.c,
		client.ConsumerConfig{OnReset: client.ResetEarliest},
		client.GroupConfig{
			Group:            a.Group(),
			Topics:           []string{a.cfg.Topic},
			StartFrom:        a.cfg.StartFrom,
			SessionTimeout:   a.cfg.SessionTimeout,
			RebalanceTimeout: a.cfg.RebalanceTimeout,
			OnAssigned:       a.onAssigned,
		})
	if err != nil {
		return err
	}
	a.gc = gc
	go a.run()
	return nil
}

// onAssigned rebuilds the per-partition exporters for a new assignment and
// aligns the consumer with each manifest. It runs on the run goroutine
// (inside Poll's rejoin), so it may touch exporters directly.
func (a *Archiver) onAssigned(assignment map[string][]int32) {
	parts := assignment[a.cfg.Topic]
	next := make(map[int32]*exporter, len(parts))
	for _, p := range parts {
		exp, err := openExporter(a.cfg.FS, a.cfg.Root, a.cfg.Topic, p, a.exporterConfig())
		if err != nil {
			a.cfg.Logger.Error("archive: open exporter", "topic", a.cfg.Topic, "partition", p, "err", err)
			continue
		}
		// The manifest, not the committed offset, is the resume truth: a
		// crash between manifest commit and offset commit leaves the
		// checkpoint behind, and redelivered records would be duplicates.
		if pos := a.gc.Position(a.cfg.Topic, p); pos != exp.man.NextOffset && exp.man.NextOffset > 0 {
			if err := a.gc.Seek(a.cfg.Topic, p, exp.man.NextOffset); err != nil {
				a.cfg.Logger.Error("archive: seek", "topic", a.cfg.Topic, "partition", p, "err", err)
			}
		}
		next[p] = exp
	}
	a.exporters = next
	a.mu.Lock()
	a.stats.Partitions = len(next)
	a.mu.Unlock()
}

// run is the export loop: poll, buffer, roll, checkpoint.
func (a *Archiver) run() {
	defer close(a.done)
	for {
		select {
		case <-a.kill:
			return
		case <-a.stop:
			a.rollDue(true)
			return
		default:
		}
		msgs, err := a.gc.Poll(a.cfg.PollWait)
		if err != nil {
			if errors.Is(err, client.ErrGroupClosed) {
				return
			}
			a.cfg.Logger.Warn("archive: poll", "topic", a.cfg.Topic, "err", err)
			time.Sleep(50 * time.Millisecond)
			continue
		}
		// Partitions whose exporter failed to open during onAssigned are
		// retried here on their next message, so a transient DFS error
		// cannot silently stall a partition until the next rebalance. The
		// consumer is re-seeked to the manifest and the current batch
		// skipped, so the retry never leaves an offset gap.
		skip := make(map[int32]bool)
		for _, m := range msgs {
			if m.Topic != a.cfg.Topic || skip[m.Partition] {
				continue
			}
			exp, ok := a.exporters[m.Partition]
			if !ok {
				fresh, err := openExporter(a.cfg.FS, a.cfg.Root, a.cfg.Topic, m.Partition, a.exporterConfig())
				if err != nil {
					a.cfg.Logger.Warn("archive: open exporter retry", "topic", a.cfg.Topic, "partition", m.Partition, "err", err)
					skip[m.Partition] = true
					continue
				}
				a.exporters[m.Partition] = fresh
				_ = a.gc.Seek(a.cfg.Topic, m.Partition, fresh.man.NextOffset)
				skip[m.Partition] = true
				continue
			}
			exp.add(m)
		}
		a.rollDue(false)
	}
}

// rollDue rolls every exporter whose buffer crossed a threshold (or every
// non-empty one when force is set) and checkpoints each roll. A buffer
// holding several segments' worth rolls repeatedly until under threshold.
func (a *Archiver) rollDue(force bool) {
	for p, exp := range a.exporters {
		for exp.shouldRoll() || (force && len(exp.buf) > 0) {
			info, err := exp.roll()
			if errors.Is(err, ErrManifestConflict) {
				// Another export task owns this partition now (it moved
				// during a rebalance this member hasn't seen yet). Reload
				// from the committed manifest and realign the consumer.
				a.cfg.Logger.Warn("archive: stale exporter", "topic", a.cfg.Topic, "partition", p, "err", err)
				fresh, oerr := openExporter(a.cfg.FS, a.cfg.Root, a.cfg.Topic, p, a.exporterConfig())
				if oerr != nil {
					delete(a.exporters, p)
					break
				}
				a.exporters[p] = fresh
				_ = a.gc.Seek(a.cfg.Topic, p, fresh.man.NextOffset)
				break
			}
			if err != nil {
				a.cfg.Logger.Error("archive: roll", "topic", a.cfg.Topic, "partition", p, "err", err)
				break
			}
			a.mu.Lock()
			a.stats.Records += info.Records
			a.stats.Bytes += info.Bytes
			a.stats.Segments++
			skip := a.skipCommits
			a.mu.Unlock()
			if skip {
				continue
			}
			err = a.c.CommitOffsets(a.Group(),
				map[string]map[int32]int64{a.cfg.Topic: {p: exp.man.NextOffset}},
				segmentAnnotations(info))
			if err != nil {
				a.cfg.Logger.Warn("archive: offset commit", "topic", a.cfg.Topic, "partition", p, "err", err)
				a.mu.Lock()
				a.stats.CommitErrors++
				a.mu.Unlock()
			}
		}
	}
}

// Stop drains gracefully: buffered records are rolled into final segments
// and checkpointed before the group is left.
func (a *Archiver) Stop() error {
	if !a.markStopped() {
		return nil
	}
	close(a.stop)
	<-a.done
	return a.gc.Close()
}

// Kill models a crash: the loop halts immediately, abandoning buffered
// records and uncommitted checkpoints. A restarted archiver must recover
// from the manifests and committed offsets alone.
func (a *Archiver) Kill() {
	if !a.markStopped() {
		return
	}
	close(a.kill)
	<-a.done
	_ = a.gc.Close()
}

// markStopped flips the stopped flag, reporting whether this call won.
func (a *Archiver) markStopped() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.started || a.stopped {
		return false
	}
	a.stopped = true
	return true
}

// FailCheckpoints is a failure-injection hook for recovery tests: segments
// and manifests keep committing, offset checkpoints stop — modelling a
// crash in the window between manifest commit and checkpoint, the widest
// window exactly-once recovery must close. Combine with Kill.
func (a *Archiver) FailCheckpoints() {
	a.mu.Lock()
	a.skipCommits = true
	a.mu.Unlock()
}

package archive

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/dfs"
	"repro/internal/storage/record"
)

// Crash-recovery tests for the export commit protocol: a SIGKILL-equivalent
// between a segment seal (rename into place) and its manifest commit leaves
// an orphan segment the restarted exporter must sweep and re-export —
// exactly once, with no gap and no duplicate — in both the LIQARCH1
// (uncompressed) and LIQARCH2 (compressed) segment formats.

var errInjectedCrash = errors.New("injected crash (SIGKILL window)")

func crashFS(t *testing.T) *dfs.FS {
	t.Helper()
	fs, err := dfs.Open(dfs.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

// feedMessages renders n consecutive feed messages starting at offset base.
func feedMessages(base int64, n int) []client.Message {
	out := make([]client.Message, n)
	for i := range out {
		out[i] = client.Message{
			Topic:     "t",
			Partition: 0,
			Offset:    base + int64(i),
			Timestamp: 1000 + base + int64(i),
			Key:       []byte(fmt.Sprintf("k%03d", base+int64(i))),
			Value:     []byte(fmt.Sprintf("v%03d", base+int64(i))),
		}
	}
	return out
}

func TestCrashBetweenSealAndManifestCommit(t *testing.T) {
	cases := []struct {
		name  string
		codec record.Codec
		magic string
	}{
		{"LIQARCH1-uncompressed", record.CodecNone, "LIQARCH1"},
		{"LIQARCH2-flate", record.CodecFlate, "LIQARCH2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := crashFS(t)
			const root = "/archive"
			cfg := exporterConfig{segmentRecords: 10, codec: tc.codec}
			cfg.onSealed = func(string) error { return errInjectedCrash }

			exp, err := openExporter(fs, root, "t", 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range feedMessages(0, 10) {
				if !exp.add(m) {
					t.Fatalf("message %d rejected", m.Offset)
				}
			}
			if _, err := exp.roll(); !errors.Is(err, errInjectedCrash) {
				t.Fatalf("roll error = %v, want injected crash", err)
			}

			// The crash left the orphan state: a sealed segment on the DFS
			// with no manifest pointing at it.
			segs := fs.List(SegmentsPrefix(root, "t"))
			if len(segs) != 1 {
				t.Fatalf("segments after crash = %d, want 1 orphan", len(segs))
			}
			man, err := LoadManifest(fs, root, "t", 0)
			if err != nil || man.NextOffset != 0 || len(man.Segments) != 0 {
				t.Fatalf("manifest after crash = %+v, %v; want empty", man, err)
			}

			// Restart: recovery sweeps the orphan (its range will recur)...
			cfg.onSealed = nil
			exp2, err := openExporter(fs, root, "t", 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if left := fs.List(SegmentsPrefix(root, "t")); len(left) != 0 {
				t.Fatalf("orphan not swept on recovery: %v", left)
			}

			// ...and the redelivered records archive exactly once.
			for _, m := range feedMessages(0, 10) {
				exp2.add(m)
			}
			info, err := exp2.roll()
			if err != nil {
				t.Fatal(err)
			}
			man, err = LoadManifest(fs, root, "t", 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(man.Segments) != 1 || man.NextOffset != 10 {
				t.Fatalf("recovered manifest = %+v", man)
			}
			if segs := fs.List(SegmentsPrefix(root, "t")); len(segs) != 1 {
				t.Fatalf("segment files after recovery = %d, want 1", len(segs))
			}
			data, err := fs.ReadFile(info.Path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(data, []byte(tc.magic)) {
				t.Fatalf("segment magic = %q, want %s", data[:8], tc.magic)
			}
			recs, err := DecodeSegment(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 10 {
				t.Fatalf("recovered segment holds %d records, want 10", len(recs))
			}
			for i, r := range recs {
				if r.Offset != int64(i) || string(r.Value) != fmt.Sprintf("v%03d", i) {
					t.Fatalf("record %d = offset %d value %q", i, r.Offset, r.Value)
				}
			}
		})
	}
}

// TestCrashAfterPartialProgress crashes mid-stream: two segments commit,
// the third seals without a manifest. Recovery must keep the two committed
// segments untouched, sweep only the orphan, and resume from the manifest's
// NextOffset.
func TestCrashAfterPartialProgress(t *testing.T) {
	fs := crashFS(t)
	const root = "/archive"
	rolls := 0
	cfg := exporterConfig{segmentRecords: 10}
	cfg.onSealed = func(string) error {
		rolls++
		if rolls == 3 {
			return errInjectedCrash
		}
		return nil
	}
	exp, err := openExporter(fs, root, "t", 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range feedMessages(0, 30) {
		exp.add(m)
	}
	for i := 0; i < 2; i++ {
		if _, err := exp.roll(); err != nil {
			t.Fatalf("roll %d: %v", i, err)
		}
	}
	if _, err := exp.roll(); !errors.Is(err, errInjectedCrash) {
		t.Fatalf("roll 3 error = %v, want injected crash", err)
	}

	cfg.onSealed = nil
	exp2, err := openExporter(fs, root, "t", 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exp2.man.NextOffset != 20 || len(exp2.man.Segments) != 2 {
		t.Fatalf("recovered manifest = %+v", exp2.man)
	}
	// Only the orphan (base 20) was swept; committed segments survive.
	segs := fs.List(SegmentsPrefix(root, "t"))
	if len(segs) != 2 {
		t.Fatalf("segments after recovery = %d, want 2", len(segs))
	}
	// Redelivery from the committed offset finishes the export.
	for _, m := range feedMessages(20, 10) {
		exp2.add(m)
	}
	if _, err := exp2.roll(); err != nil {
		t.Fatal(err)
	}
	man, _ := LoadManifest(fs, root, "t", 0)
	if man.NextOffset != 30 || len(man.Segments) != 3 {
		t.Fatalf("final manifest = %+v", man)
	}
	want := int64(0)
	for _, seg := range man.Segments {
		if seg.BaseOffset != want {
			t.Fatalf("segment chain broken at %d, want base %d", seg.BaseOffset, want)
		}
		want = seg.LastOffset + 1
	}
}

// TestCrashBeforeRenameSweepsTmp covers the earlier crash point: the write
// of the temporary segment file completed but the rename never happened. A
// .tmp is ours to sweep on recovery; it must never shadow a future roll.
func TestCrashBeforeRenameSweepsTmp(t *testing.T) {
	fs := crashFS(t)
	const root = "/archive"
	tmp := segmentPath(root, "t", 0, 0, 9) + ".tmp"
	if err := fs.WriteFile(tmp, []byte("half-written segment")); err != nil {
		t.Fatal(err)
	}
	exp, err := openExporter(fs, root, "t", 0, exporterConfig{segmentRecords: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range fs.List(SegmentsPrefix(root, "t")) {
		if strings.HasSuffix(info.Path, ".tmp") {
			t.Fatalf("tmp leftover not swept: %s", info.Path)
		}
	}
	for _, m := range feedMessages(0, 10) {
		exp.add(m)
	}
	if _, err := exp.roll(); err != nil {
		t.Fatalf("roll over swept tmp: %v", err)
	}
	man, _ := LoadManifest(fs, root, "t", 0)
	if man.NextOffset != 10 || len(man.Segments) != 1 {
		t.Fatalf("manifest = %+v", man)
	}
}

package archive

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/dfs"
	"repro/internal/storage/record"
	"repro/internal/wire"
)

// SnapshotConfig parameterises a one-shot export.
type SnapshotConfig struct {
	// Topic is the feed to archive.
	Topic string
	// FS is the destination file system.
	FS *dfs.FS
	// Root is the archive tree's DFS root (default "/archive").
	Root string
	// Name scopes the checkpoint group ("__archiver-<Name>", default
	// Name = Topic), so a snapshot and a later streaming Archiver with the
	// same name share progress.
	Name string
	// SegmentBytes bounds segment payloads (default 4 MiB).
	SegmentBytes int64
	// SegmentRecords bounds segment record counts (0 = no bound).
	SegmentRecords int
	// Codec compresses segment files on the DFS (see ArchiverConfig.Codec).
	Codec record.Codec
	// Timeout bounds the whole snapshot (default 60s).
	Timeout time.Duration
}

func (c SnapshotConfig) withDefaults() SnapshotConfig {
	if c.Root == "" {
		c.Root = "/archive"
	}
	if c.Name == "" {
		c.Name = c.Topic
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	return c
}

// SnapshotStats summarises one snapshot run.
type SnapshotStats struct {
	// Partitions is the feed's partition count.
	Partitions int32
	// Records / Bytes / Segments count what THIS run exported (already
	// archived data is skipped, making Snapshot idempotent).
	Records  int64
	Bytes    int64
	Segments int64
	// NextOffsets maps each partition to its archived high-water mark
	// after the run.
	NextOffsets map[int32]int64
}

// Snapshot archives a feed up to its current end offsets and returns. It is
// incremental and idempotent: partitions already archived past the end are
// skipped, and a re-run after new traffic exports only the delta. The same
// manifests and annotated checkpoints as the streaming Archiver make the
// result indistinguishable from one.
func Snapshot(c *client.Client, cfg SnapshotConfig) (SnapshotStats, error) {
	cfg = cfg.withDefaults()
	var stats SnapshotStats
	if cfg.Topic == "" {
		return stats, errors.New("archive: Topic is required")
	}
	if cfg.FS == nil {
		return stats, errors.New("archive: FS is required")
	}
	n, err := c.PartitionCount(cfg.Topic)
	if err != nil {
		return stats, err
	}
	stats.Partitions = n
	stats.NextOffsets = make(map[int32]int64, n)
	group := "__archiver-" + cfg.Name
	deadline := time.Now().Add(cfg.Timeout)
	for p := int32(0); p < n; p++ {
		exp, err := openExporter(cfg.FS, cfg.Root, cfg.Topic, p, exporterConfig{
			segmentBytes:   cfg.SegmentBytes,
			segmentRecords: cfg.SegmentRecords,
			codec:          cfg.Codec,
		})
		if err != nil {
			return stats, err
		}
		end, err := c.ListOffset(cfg.Topic, p, wire.TimestampLatest)
		if err != nil {
			return stats, err
		}
		if exp.man.NextOffset >= end {
			stats.NextOffsets[p] = exp.man.NextOffset
			continue
		}
		cons := client.NewConsumer(c, client.ConsumerConfig{OnReset: client.ResetEarliest})
		start := exp.man.NextOffset
		if start == 0 {
			start = client.StartEarliest
		}
		if err := cons.Assign(cfg.Topic, p, start); err != nil {
			cons.Close()
			return stats, err
		}
		for cons.Position(cfg.Topic, p) < end {
			if time.Now().After(deadline) {
				cons.Close()
				return stats, fmt.Errorf("archive: snapshot of %s/%d timed out at offset %d/%d",
					cfg.Topic, p, cons.Position(cfg.Topic, p), end)
			}
			msgs, err := cons.Poll(200 * time.Millisecond)
			if err != nil {
				continue
			}
			for _, m := range msgs {
				if m.Offset < end {
					exp.add(m)
				}
			}
			for exp.shouldRoll() {
				if err := commitRoll(c, group, cfg.Topic, p, exp, &stats); err != nil {
					cons.Close()
					return stats, err
				}
			}
		}
		cons.Close()
		for len(exp.buf) > 0 {
			if err := commitRoll(c, group, cfg.Topic, p, exp, &stats); err != nil {
				return stats, err
			}
		}
		stats.NextOffsets[p] = exp.man.NextOffset
	}
	return stats, nil
}

// commitRoll rolls one segment and checkpoints it under the group.
func commitRoll(c *client.Client, group, topic string, p int32, exp *exporter, stats *SnapshotStats) error {
	info, err := exp.roll()
	if err != nil {
		return err
	}
	stats.Records += info.Records
	stats.Bytes += info.Bytes
	stats.Segments++
	return c.CommitOffsets(group,
		map[string]map[int32]int64{topic: {p: exp.man.NextOffset}},
		segmentAnnotations(info))
}

package archive

import (
	"sort"

	"repro/internal/dfs"
	"repro/internal/mapreduce"
)

// MRInput is the MapReduce input adapter over an archived feed: it resolves
// the committed segment files from the manifests (never trusting stray
// files in the segments directory) and returns them with a decoder, ready
// to drop into a mapreduce.JobSpec:
//
//	files, decode, err := archive.MRInput(fs, "/archive", "events")
//	engine.Run(mapreduce.JobSpec{InputFiles: files, Decode: decode, ...})
//
// Map tasks see one record per archived message, Key = message key and
// Value = message value, so offline jobs consume the exact nearline stream
// without any re-materialisation step.
func MRInput(fs *dfs.FS, root, topic string) ([]string, func([]byte) ([]mapreduce.KV, error), error) {
	manifests, err := ListManifests(fs, root, topic)
	if err != nil {
		return nil, nil, err
	}
	var files []string
	for _, m := range manifests {
		for _, seg := range m.Segments {
			files = append(files, seg.Path)
		}
	}
	sort.Strings(files)
	return files, DecodeKV, nil
}

// DecodeKV parses one segment file into MapReduce records. Corruption
// fails the map task — an offline scan must never silently undercount.
func DecodeKV(data []byte) ([]mapreduce.KV, error) {
	records, err := DecodeSegment(data)
	if err != nil {
		return nil, err
	}
	out := make([]mapreduce.KV, len(records))
	for i := range records {
		out[i] = mapreduce.KV{Key: string(records[i].Key), Value: string(records[i].Value)}
	}
	return out, nil
}

package archive

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/client"
	"repro/internal/dfs"
	"repro/internal/storage/record"
)

// Backfill header keys: each republished message carries its provenance so
// downstream jobs can distinguish replay from live traffic and correlate
// records with their original offsets.
const (
	// HeaderBackfillSource holds "topic/partition" of the archived origin.
	HeaderBackfillSource = "liquid.backfill.source"
	// HeaderBackfillOffset holds the record's original feed offset.
	HeaderBackfillOffset = "liquid.backfill.offset"
	// HeaderBackfillSegment holds the archived segment path.
	HeaderBackfillSegment = "liquid.backfill.segment"
)

// BackfillConfig parameterises a replay of archived segments into a feed.
type BackfillConfig struct {
	// FS / Root locate the archive tree.
	FS   *dfs.FS
	Root string
	// SourceTopic is the archived feed to replay.
	SourceTopic string
	// Partitions selects archived partitions to replay; empty replays
	// them all.
	Partitions []int32
	// TargetTopic is the destination feed (it may be the source feed
	// itself for beyond-retention rewind, or a fresh feed).
	TargetTopic string
	// PreservePartitions routes each record to its original partition
	// (requires the target to have at least as many partitions); when
	// false records are re-routed by key.
	PreservePartitions bool
	// RecordsPerSec bounds the publish rate (0 = unlimited), so a replay
	// cannot starve live traffic — the paper's resource-isolation concern
	// applied to rewind.
	RecordsPerSec int
	// Group scopes the progress checkpoints
	// ("__backfill-<source>-<target>" by default); a re-run under the
	// same group skips segments already handed off.
	Group string
	// Acks selects producer durability (default leader acks).
	Acks int16
}

func (c BackfillConfig) withDefaults() BackfillConfig {
	if c.Root == "" {
		c.Root = "/archive"
	}
	if c.Group == "" {
		c.Group = "__backfill-" + c.SourceTopic + "-" + c.TargetTopic
	}
	if c.Acks == 0 {
		c.Acks = 1
	}
	return c
}

// BackfillStats summarises one backfill run.
type BackfillStats struct {
	// Partitions is how many archived partitions were replayed.
	Partitions int
	// Segments / Records / Bytes count what THIS run republished.
	Segments int64
	Records  int64
	Bytes    int64
	// SkippedSegments counts segments already handed off under the group
	// (exactly-once across re-runs).
	SkippedSegments int64
	// Duration is the wall-clock replay time.
	Duration time.Duration
}

// Backfill republishes archived segments into a feed at a bounded rate.
// The unit of handoff is the segment: after a segment's records are
// acknowledged, its last offset is checkpointed under the group with
// annotations naming the segment, so an interrupted or repeated run resumes
// after the last completed segment and never republishes one twice.
func Backfill(c *client.Client, cfg BackfillConfig) (BackfillStats, error) {
	cfg = cfg.withDefaults()
	var stats BackfillStats
	start := time.Now()
	if cfg.SourceTopic == "" || cfg.TargetTopic == "" {
		return stats, errors.New("archive: SourceTopic and TargetTopic are required")
	}
	if cfg.FS == nil {
		return stats, errors.New("archive: FS is required")
	}
	manifests, err := ListManifests(cfg.FS, cfg.Root, cfg.SourceTopic)
	if err != nil {
		return stats, err
	}
	if len(cfg.Partitions) > 0 {
		byPart := make(map[int32]*Manifest, len(manifests))
		for _, m := range manifests {
			byPart[m.Partition] = m
		}
		var selected []*Manifest
		for _, p := range cfg.Partitions {
			m, ok := byPart[p]
			if !ok {
				return stats, fmt.Errorf("%w: %s/%d", ErrNoArchive, cfg.SourceTopic, p)
			}
			selected = append(selected, m)
		}
		manifests = selected
	}
	targetParts, err := c.PartitionCount(cfg.TargetTopic)
	if err != nil {
		return stats, err
	}
	if cfg.PreservePartitions {
		for _, m := range manifests {
			if m.Partition >= targetParts {
				return stats, fmt.Errorf("archive: cannot preserve partition %d of %s: target %s has %d partitions",
					m.Partition, cfg.SourceTopic, cfg.TargetTopic, targetParts)
			}
		}
	}

	prod := client.NewProducer(c, client.ProducerConfig{Acks: cfg.Acks, BatchBytes: 256 << 10})
	defer prod.Close()
	limiter := newRateLimiter(cfg.RecordsPerSec)

	for _, man := range manifests {
		// Resume point: the committed checkpoint is the last offset (+1)
		// of the last fully handed-off segment.
		committed, err := c.FetchOffsets(cfg.Group, cfg.SourceTopic, []int32{man.Partition})
		if err != nil {
			return stats, err
		}
		resume := committed[man.Partition] // -1 when absent
		stats.Partitions++
		for _, seg := range man.Segments {
			if seg.LastOffset < resume {
				stats.SkippedSegments++
				continue
			}
			data, err := cfg.FS.ReadFile(seg.Path)
			if err != nil {
				return stats, err
			}
			records, err := DecodeSegment(data)
			if err != nil {
				return stats, fmt.Errorf("archive: segment %s: %w", seg.Path, err)
			}
			source := fmt.Sprintf("%s/%d", cfg.SourceTopic, man.Partition)
			for i := range records {
				r := &records[i]
				if r.Offset < resume {
					continue // partial segment handoff is impossible, but stay safe
				}
				limiter.wait()
				msg := client.Message{
					Topic:     cfg.TargetTopic,
					Partition: man.Partition,
					Timestamp: r.Timestamp,
					Key:       r.Key,
					Value:     r.Value,
					Headers: append(append([]record.Header(nil), r.Headers...),
						record.Header{Key: HeaderBackfillSource, Value: []byte(source)},
						record.Header{Key: HeaderBackfillOffset, Value: []byte(strconv.FormatInt(r.Offset, 10))},
						record.Header{Key: HeaderBackfillSegment, Value: []byte(seg.Path)}),
				}
				var serr error
				if cfg.PreservePartitions {
					serr = prod.SendExplicit(msg)
				} else {
					serr = prod.Send(msg)
				}
				if serr != nil {
					return stats, serr
				}
				stats.Records++
				stats.Bytes += int64(len(r.Key) + len(r.Value))
			}
			// Segment handoff commit: flush (so every record is
			// acknowledged), then checkpoint the segment boundary.
			if err := prod.Flush(); err != nil {
				return stats, err
			}
			err = c.CommitOffsets(cfg.Group,
				map[string]map[int32]int64{cfg.SourceTopic: {man.Partition: seg.LastOffset + 1}},
				map[string]string{
					"backfill.segment": seg.Path,
					"backfill.target":  cfg.TargetTopic,
					"backfill.records": strconv.FormatInt(seg.Records, 10),
				})
			if err != nil {
				return stats, err
			}
			stats.Segments++
		}
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// rateLimiter paces record publishes to a fixed rate.
type rateLimiter struct {
	interval time.Duration
	next     time.Time
}

func newRateLimiter(perSec int) *rateLimiter {
	if perSec <= 0 {
		return &rateLimiter{}
	}
	return &rateLimiter{interval: time.Second / time.Duration(perSec)}
}

// wait blocks until the next publish slot.
func (l *rateLimiter) wait() {
	if l.interval == 0 {
		return
	}
	now := time.Now()
	if l.next.Before(now) {
		l.next = now
	}
	time.Sleep(l.next.Sub(now))
	l.next = l.next.Add(l.interval)
}

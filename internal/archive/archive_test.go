package archive_test

import (
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/mapreduce"
)

// newStack boots a single-broker stack with fast timeouts.
func newStack(t *testing.T) *core.Stack {
	t.Helper()
	s, err := core.Start(core.Config{
		Brokers:        1,
		SessionTimeout: 700 * time.Millisecond,
		Logger:         slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError})),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

// produceN publishes n keyed messages "k<i>" -> "v<i>" and returns when
// they are all acknowledged.
func produceN(t *testing.T, s *core.Stack, topic string, from, n int) {
	t.Helper()
	p := s.NewProducer(client.ProducerConfig{})
	defer p.Close()
	for i := from; i < from+n; i++ {
		if err := p.Send(client.Message{
			Topic: topic,
			Key:   []byte(fmt.Sprintf("k%d", i)),
			Value: []byte(fmt.Sprintf("v%d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
}

// archivedValues reads every committed segment of a topic and returns the
// values in manifest order per partition, failing on offset regressions or
// duplicates within a partition.
func archivedValues(t *testing.T, s *core.Stack, root, topic string) map[int32][]string {
	t.Helper()
	fs, err := s.ArchiveFS()
	if err != nil {
		t.Fatal(err)
	}
	manifests, err := archive.ListManifests(fs, root, topic)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int32][]string)
	for _, m := range manifests {
		last := int64(-1)
		for _, seg := range m.Segments {
			data, err := fs.ReadFile(seg.Path)
			if err != nil {
				t.Fatalf("segment %s: %v", seg.Path, err)
			}
			records, err := archive.DecodeSegment(data)
			if err != nil {
				t.Fatalf("segment %s: %v", seg.Path, err)
			}
			if int64(len(records)) != seg.Records {
				t.Fatalf("segment %s holds %d records, manifest says %d", seg.Path, len(records), seg.Records)
			}
			for _, r := range records {
				if r.Offset <= last {
					t.Fatalf("partition %d: offset %d after %d (duplicate or disorder)", m.Partition, r.Offset, last)
				}
				last = r.Offset
				out[m.Partition] = append(out[m.Partition], string(r.Value))
			}
		}
		if m.NextOffset != last+1 {
			t.Fatalf("partition %d: NextOffset %d, last archived %d", m.Partition, m.NextOffset, last)
		}
	}
	return out
}

// waitArchived polls until the archive of topic holds want records total.
func waitArchived(t *testing.T, s *core.Stack, root, topic string, want int, timeout time.Duration) {
	t.Helper()
	fs, err := s.ArchiveFS()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var total int64
		if manifests, err := archive.ListManifests(fs, root, topic); err == nil {
			for _, m := range manifests {
				total += m.Records()
			}
		}
		if total >= int64(want) {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("archive did not reach %d records in %v", want, timeout)
}

func TestArchiverExportsFeed(t *testing.T) {
	s := newStack(t)
	const topic, n = "arch-events", 200
	if err := s.CreateFeed(topic, 2, 1); err != nil {
		t.Fatal(err)
	}
	produceN(t, s, topic, 0, n)

	a, err := s.StartArchiver(archive.ArchiverConfig{
		Topic:          topic,
		SegmentRecords: 32,
		FlushInterval:  100 * time.Millisecond,
		PollWait:       100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitArchived(t, s, "/archive", topic, n, 15*time.Second)
	if err := a.Stop(); err != nil {
		t.Fatal(err)
	}

	byPart := archivedValues(t, s, "/archive", topic)
	total := 0
	seen := make(map[string]bool)
	for _, vals := range byPart {
		for _, v := range vals {
			if seen[v] {
				t.Fatalf("value %s archived twice", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("archived %d records, want %d", total, n)
	}

	// The annotated checkpoints record the offset↔segment mapping: asking
	// the offset manager for a segment path must return that segment's
	// covered offset.
	fs, _ := s.ArchiveFS()
	manifests, err := archive.ListManifests(fs, "/archive", topic)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range manifests {
		committed, err := s.Client().FetchOffsets(a.Group(), topic, []int32{m.Partition})
		if err != nil {
			t.Fatal(err)
		}
		if committed[m.Partition] != m.NextOffset {
			t.Fatalf("partition %d: committed %d, manifest %d", m.Partition, committed[m.Partition], m.NextOffset)
		}
		lastSeg := m.Segments[len(m.Segments)-1]
		off, found, err := s.Client().QueryOffset(a.Group(), topic, m.Partition, "archive.segment", lastSeg.Path)
		if err != nil || !found {
			t.Fatalf("partition %d: segment annotation not queryable: %v %v", m.Partition, found, err)
		}
		if off != lastSeg.LastOffset+1 {
			t.Fatalf("partition %d: annotation offset %d, want %d", m.Partition, off, lastSeg.LastOffset+1)
		}
	}
	if st := a.Stats(); st.Records != int64(n) || st.Segments == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestArchiverCrashRecovery kills an archiver in the widest crash window —
// segments and manifests committed, offset checkpoints suppressed — then
// restarts it and proves the archive converges with no record lost or
// archived twice.
func TestArchiverCrashRecovery(t *testing.T) {
	s := newStack(t)
	const topic = "arch-crash"
	const firstBatch, secondBatch = 150, 100
	if err := s.CreateFeed(topic, 2, 1); err != nil {
		t.Fatal(err)
	}
	produceN(t, s, topic, 0, firstBatch)

	a1, err := s.StartArchiver(archive.ArchiverConfig{
		Topic:          topic,
		SegmentRecords: 20,
		FlushInterval:  100 * time.Millisecond,
		PollWait:       100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	a1.FailCheckpoints()
	// Let it commit a few segments (manifests ahead of checkpoints), then
	// crash mid-export.
	waitArchived(t, s, "/archive", topic, 40, 15*time.Second)
	a1.Kill()

	// No offset checkpoint may exist: recovery must come from manifests.
	committed, err := s.Client().FetchOffsets(a1.Group(), topic, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for p, off := range committed {
		if off != -1 {
			t.Fatalf("partition %d has committed offset %d despite FailCheckpoints", p, off)
		}
	}

	// More traffic lands while the archiver is down.
	produceN(t, s, topic, firstBatch, secondBatch)

	a2, err := s.StartArchiver(archive.ArchiverConfig{
		Topic:          topic,
		SegmentRecords: 20,
		FlushInterval:  100 * time.Millisecond,
		PollWait:       100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := firstBatch + secondBatch
	waitArchived(t, s, "/archive", topic, total, 20*time.Second)
	if err := a2.Stop(); err != nil {
		t.Fatal(err)
	}

	byPart := archivedValues(t, s, "/archive", topic)
	seen := make(map[string]bool)
	count := 0
	for _, vals := range byPart {
		for _, v := range vals {
			if seen[v] {
				t.Fatalf("value %s archived twice across crash", v)
			}
			seen[v] = true
			count++
		}
	}
	if count != total {
		t.Fatalf("archived %d records across crash, want %d", count, total)
	}
	for i := 0; i < total; i++ {
		if !seen[fmt.Sprintf("v%d", i)] {
			t.Fatalf("record v%d lost across crash", i)
		}
	}
}

func TestSnapshotThenMapReduce(t *testing.T) {
	s := newStack(t)
	const topic = "arch-words"
	if err := s.CreateFeed(topic, 2, 1); err != nil {
		t.Fatal(err)
	}
	words := []string{"log", "feed", "log", "archive", "feed", "log"}
	p := s.NewProducer(client.ProducerConfig{})
	for i, w := range words {
		if err := p.Send(client.Message{Topic: topic, Key: []byte(strconv.Itoa(i)), Value: []byte(w)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	p.Close()

	stats, err := s.ArchiveSnapshot(archive.SnapshotConfig{Topic: topic, SegmentRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != int64(len(words)) {
		t.Fatalf("snapshot exported %d records, want %d", stats.Records, len(words))
	}
	// Idempotent: a second snapshot with no new traffic exports nothing.
	again, err := s.ArchiveSnapshot(archive.SnapshotConfig{Topic: topic, SegmentRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if again.Records != 0 || again.Segments != 0 {
		t.Fatalf("re-snapshot exported %+v, want nothing", again)
	}

	// A MapReduce word count straight over the archived segments.
	fs, err := s.ArchiveFS()
	if err != nil {
		t.Fatal(err)
	}
	files, decode, err := archive.MRInput(fs, "/archive", topic)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no segment inputs")
	}
	engine := mapreduce.NewEngine(fs, mapreduce.EngineConfig{})
	_, err = engine.Run(mapreduce.JobSpec{
		Name:       "wordcount",
		InputFiles: files,
		Decode:     decode,
		OutputDir:  "/out/wordcount",
		Map: func(_, value string, emit func(k, v string)) error {
			emit(value, "1")
			return nil
		},
		Reduce: func(key string, values []string, emit func(k, v string)) error {
			emit(key, strconv.Itoa(len(values)))
			return nil
		},
		NumReducers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]string)
	for _, info := range fs.List("/out/wordcount/") {
		data, err := fs.ReadFile(info.Path)
		if err != nil {
			t.Fatal(err)
		}
		for _, kv := range mapreduce.DecodeLines(data) {
			counts[kv.Key] = kv.Value
		}
	}
	if counts["log"] != "3" || counts["feed"] != "2" || counts["archive"] != "1" {
		t.Fatalf("word counts = %v", counts)
	}

	// Incremental: new traffic, new snapshot, only the delta exports.
	produceN(t, s, topic, 100, 10)
	delta, err := s.ArchiveSnapshot(archive.SnapshotConfig{Topic: topic, SegmentRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Records != 10 {
		t.Fatalf("delta snapshot exported %d records, want 10", delta.Records)
	}

	// A corrupted segment must fail the MR job loudly, never undercount.
	files, decode, err = archive.MRInput(fs, "/archive", topic)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(files[0]); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(files[0], []byte("garbage, not a segment")); err != nil {
		t.Fatal(err)
	}
	_, err = engine.Run(mapreduce.JobSpec{
		Name:       "wordcount-corrupt",
		InputFiles: files,
		Decode:     decode,
		OutputDir:  "/out/wordcount-corrupt",
	})
	if err == nil {
		t.Fatal("MR over a corrupted segment succeeded; want a decode error")
	}
}

func TestBackfillExactlyOnce(t *testing.T) {
	s := newStack(t)
	const src, dst = "arch-src", "arch-dst"
	const n = 120
	if err := s.CreateFeed(src, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateFeed(dst, 2, 1); err != nil {
		t.Fatal(err)
	}
	produceN(t, s, src, 0, n)
	snap, err := s.ArchiveSnapshot(archive.SnapshotConfig{Topic: src, SegmentRecords: 25})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Records != n {
		t.Fatalf("snapshot %d records, want %d", snap.Records, n)
	}

	stats, err := s.Backfill(archive.BackfillConfig{
		SourceTopic:        src,
		TargetTopic:        dst,
		PreservePartitions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != n {
		t.Fatalf("backfill republished %d records, want %d", stats.Records, n)
	}

	// Consume the target feed and verify the republished stream matches
	// the archive: same values, same partitions, original offsets carried
	// in headers and strictly increasing per partition.
	cons := s.NewConsumer(client.ConsumerConfig{})
	defer cons.Close()
	cons.Assign(dst, 0, client.StartEarliest)
	cons.Assign(dst, 1, client.StartEarliest)
	type replayed struct {
		value      string
		origOffset int64
	}
	got := make(map[int32][]replayed)
	count := 0
	deadline := time.Now().Add(15 * time.Second)
	for count < n && time.Now().Before(deadline) {
		msgs, err := cons.Poll(200 * time.Millisecond)
		if err != nil {
			continue
		}
		for _, m := range msgs {
			var orig int64 = -1
			var seg string
			for _, h := range m.Headers {
				switch h.Key {
				case archive.HeaderBackfillOffset:
					orig, _ = strconv.ParseInt(string(h.Value), 10, 64)
				case archive.HeaderBackfillSegment:
					seg = string(h.Value)
				}
			}
			if orig < 0 || seg == "" {
				t.Fatalf("backfilled message lacks provenance headers: %+v", m.Headers)
			}
			got[m.Partition] = append(got[m.Partition], replayed{value: string(m.Value), origOffset: orig})
			count++
		}
	}
	if count != n {
		t.Fatalf("consumed %d backfilled records, want %d", count, n)
	}
	want := archivedValues(t, s, "/archive", src)
	for p, records := range got {
		if len(records) != len(want[p]) {
			t.Fatalf("partition %d: replayed %d records, archived %d", p, len(records), len(want[p]))
		}
		last := int64(-1)
		for i, r := range records {
			if r.value != want[p][i] {
				t.Fatalf("partition %d record %d: value %q, archived %q", p, i, r.value, want[p][i])
			}
			if r.origOffset <= last {
				t.Fatalf("partition %d: original offsets disordered (%d after %d)", p, r.origOffset, last)
			}
			last = r.origOffset
		}
	}

	// Exactly-once handoff: a re-run under the same group skips every
	// segment and republishes nothing.
	rerun, err := s.Backfill(archive.BackfillConfig{
		SourceTopic:        src,
		TargetTopic:        dst,
		PreservePartitions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Records != 0 || rerun.Segments != 0 {
		t.Fatalf("re-run republished %+v, want nothing", rerun)
	}
	if rerun.SkippedSegments != stats.Segments {
		t.Fatalf("re-run skipped %d segments, want %d", rerun.SkippedSegments, stats.Segments)
	}
}

func TestBackfillRateBound(t *testing.T) {
	s := newStack(t)
	const src, dst = "rate-src", "rate-dst"
	const n = 50
	if err := s.CreateFeed(src, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateFeed(dst, 1, 1); err != nil {
		t.Fatal(err)
	}
	produceN(t, s, src, 0, n)
	if _, err := s.ArchiveSnapshot(archive.SnapshotConfig{Topic: src}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	stats, err := s.Backfill(archive.BackfillConfig{
		SourceTopic:        src,
		TargetTopic:        dst,
		PreservePartitions: true,
		RecordsPerSec:      200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != n {
		t.Fatalf("republished %d, want %d", stats.Records, n)
	}
	// 50 records at 200/s must take at least ~240ms.
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("rate-bounded backfill finished in %v, too fast for 200/s", elapsed)
	}
}

package archive

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/dfs"
	"repro/internal/storage/record"
)

// exporter drains one feed partition into rolled segment files. It owns the
// partition's manifest: add buffers records, roll writes the buffer as an
// immutable segment (tmp write + atomic rename) and commits the manifest.
// The commit order — segment, manifest, then offset checkpoint by the
// caller — means a crash at any point leaves the manifest's NextOffset as
// the exact resume position with no record lost or archived twice.
type exporter struct {
	fs        *dfs.FS
	root      string
	topic     string
	partition int32
	cfg       exporterConfig

	man      *Manifest
	buf      []Record
	bufBytes int64
	openedAt time.Time // when the first buffered record arrived
}

// exporterConfig sizes one partition exporter.
type exporterConfig struct {
	segmentBytes   int64
	segmentRecords int
	flushAge       time.Duration
	codec          record.Codec // segment-file compression
	// onSealed is a crash-injection hook for recovery tests: it runs after
	// a segment is renamed into place and before the manifest commit — the
	// exact window a SIGKILL leaves an orphan segment. Returning an error
	// aborts the roll there, reproducing the on-DFS state a crashed
	// archiver leaves behind. Nil in production.
	onSealed func(path string) error
}

// openExporter loads the partition's manifest and removes orphan segments —
// files a crashed exporter renamed into place before committing the
// manifest. Orphans start at or beyond NextOffset, exactly the range the
// restarted exporter will re-export.
func openExporter(fs *dfs.FS, root, topic string, partition int32, cfg exporterConfig) (*exporter, error) {
	man, err := LoadManifest(fs, root, topic, partition)
	if err != nil {
		return nil, err
	}
	for _, info := range fs.List(SegmentsPrefix(root, topic)) {
		// A .tmp is a roll that crashed before its rename; its offset
		// range may never recur (time-based cuts), so sweep any of ours.
		if trimmed := strings.TrimSuffix(info.Path, ".tmp"); trimmed != info.Path {
			if p, _, _, ok := parseSegmentPath(trimmed); ok && p == partition {
				_ = fs.Delete(info.Path)
			}
			continue
		}
		p, base, _, ok := parseSegmentPath(info.Path)
		if ok && p == partition && base >= man.NextOffset {
			_ = fs.Delete(info.Path)
		}
	}
	return &exporter{
		fs: fs, root: root, topic: topic, partition: partition,
		cfg: cfg,
		man: man,
	}, nil
}

// nextOffset returns the first feed offset not yet archived or buffered.
func (e *exporter) nextOffset() int64 {
	if n := len(e.buf); n > 0 {
		return e.buf[n-1].Offset + 1
	}
	return e.man.NextOffset
}

// add buffers one consumed message, dropping anything already archived or
// buffered (redelivery after a rebalance or a seek). It reports whether the
// message was accepted.
func (e *exporter) add(msg client.Message) bool {
	if msg.Offset < e.nextOffset() {
		return false
	}
	if len(e.buf) == 0 {
		e.openedAt = time.Now()
	}
	rec := Record{
		Offset:    msg.Offset,
		Timestamp: msg.Timestamp,
		Key:       msg.Key,
		Value:     msg.Value,
		Headers:   msg.Headers,
	}
	e.buf = append(e.buf, rec)
	e.bufBytes += recordBytes(&rec)
	return true
}

// recordBytes is a record's payload contribution to segment sizing —
// key, value, and headers (header-heavy records must count, or the size
// threshold never fires on them).
func recordBytes(r *Record) int64 {
	n := int64(len(r.Key) + len(r.Value))
	for _, h := range r.Headers {
		n += int64(len(h.Key) + len(h.Value))
	}
	return n
}

// shouldRoll reports whether the buffer crossed a size, count, or age
// threshold.
func (e *exporter) shouldRoll() bool {
	if len(e.buf) == 0 {
		return false
	}
	if e.cfg.segmentBytes > 0 && e.bufBytes >= e.cfg.segmentBytes {
		return true
	}
	if e.cfg.segmentRecords > 0 && len(e.buf) >= e.cfg.segmentRecords {
		return true
	}
	return e.cfg.flushAge > 0 && time.Since(e.openedAt) >= e.cfg.flushAge
}

// cut returns how many buffered records the next segment takes: the whole
// buffer, clipped to the first size or count threshold. One poll can buffer
// several segments' worth at once; cutting (rather than swallowing the
// buffer) keeps segment sizes honest.
func (e *exporter) cut() int {
	n := len(e.buf)
	if e.cfg.segmentRecords > 0 && n > e.cfg.segmentRecords {
		n = e.cfg.segmentRecords
	}
	if e.cfg.segmentBytes > 0 {
		var size int64
		for i := 0; i < n; i++ {
			size += recordBytes(&e.buf[i])
			if size >= e.cfg.segmentBytes {
				n = i + 1
				break
			}
		}
	}
	return n
}

// roll writes the next cut of buffered records as one immutable segment and
// commits the manifest. It returns the new segment's info; callers then
// checkpoint the offset with annotations recording the mapping, and keep
// rolling while shouldRoll holds.
func (e *exporter) roll() (SegmentInfo, error) {
	if len(e.buf) == 0 {
		return SegmentInfo{}, fmt.Errorf("archive: roll of empty buffer on %s/%d", e.topic, e.partition)
	}
	n := e.cut()
	seg := e.buf[:n]
	data, err := EncodeSegmentCodec(seg, e.cfg.codec)
	if err != nil {
		return SegmentInfo{}, err
	}
	base := seg[0].Offset
	last := seg[n-1].Offset
	final := segmentPath(e.root, e.topic, e.partition, base, last)
	tmp := final + ".tmp"
	// Sweep a tmp leftover from a crashed roll of the same range; the
	// FINAL path is never pre-deleted — openExporter already swept our own
	// orphans, so an existing final means a concurrent exporter owns this
	// range and this instance is stale.
	_ = e.fs.Delete(tmp)
	if err := e.fs.WriteFile(tmp, data); err != nil {
		return SegmentInfo{}, err
	}
	if err := e.fs.Rename(tmp, final); err != nil {
		_ = e.fs.Delete(tmp)
		if errors.Is(err, dfs.ErrExists) {
			return SegmentInfo{}, fmt.Errorf("%w: segment %s", ErrManifestConflict, final)
		}
		return SegmentInfo{}, err
	}
	info := SegmentInfo{
		Path:           final,
		BaseOffset:     base,
		LastOffset:     last,
		Records:        int64(n),
		Bytes:          int64(len(data)),
		FirstTimestamp: seg[0].Timestamp,
		LastTimestamp:  seg[n-1].Timestamp,
	}
	if e.cfg.onSealed != nil {
		// Injected crash between segment seal and manifest commit.
		if err := e.cfg.onSealed(final); err != nil {
			return SegmentInfo{}, err
		}
	}
	// Commit a candidate manifest; the exporter's state only moves if the
	// commit lands, so a failed or conflicted commit leaves it consistent
	// for a retry or a reload.
	next := *e.man
	next.Segments = append(append([]SegmentInfo(nil), e.man.Segments...), info)
	next.NextOffset = last + 1
	if err := commitManifest(e.fs, e.root, &next); err != nil {
		// Withdraw the segment only on a non-conflict failure: after a
		// conflict, the file at this path may be a successor's — it can
		// have swept our (then-orphan) upload and re-rolled the same
		// range to the same path before committing — and deleting it
		// would destroy manifest-referenced data.
		if !errors.Is(err, ErrManifestConflict) {
			_ = e.fs.Delete(final)
		}
		return SegmentInfo{}, err
	}
	e.man = &next
	if n == len(e.buf) {
		e.buf = nil
		e.bufBytes = 0
	} else {
		rest := make([]Record, len(e.buf)-n)
		copy(rest, e.buf[n:])
		e.buf = rest
		e.bufBytes = 0
		for i := range rest {
			e.bufBytes += recordBytes(&rest[i])
		}
		e.openedAt = time.Now()
	}
	return info, nil
}

// annotations renders the offset↔segment mapping checkpointed alongside the
// committed offset (paper §3.1.2: annotated checkpoints).
func segmentAnnotations(info SegmentInfo) map[string]string {
	return map[string]string{
		"archive.segment":    info.Path,
		"archive.baseOffset": fmt.Sprint(info.BaseOffset),
		"archive.lastOffset": fmt.Sprint(info.LastOffset),
		"archive.records":    fmt.Sprint(info.Records),
	}
}

package dataflow

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/processing"
)

func startStack(t *testing.T) *core.Stack {
	t.Helper()
	s, err := core.Start(core.Config{Brokers: 1, SessionTimeout: 700 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

// forwardTask relays values to a fixed output, optionally transforming.
func forwardTask(out string, transform func(string) string) processing.TaskFactory {
	return func() processing.StreamTask {
		return processing.TaskFunc(func(msg client.Message, _ *processing.TaskContext, c *processing.Collector) error {
			v := string(msg.Value)
			if transform != nil {
				v = transform(v)
			}
			return c.Send(out, msg.Key, []byte(v))
		})
	}
}

func TestValidateRejectsUnknownFeeds(t *testing.T) {
	g := Graph{
		Feeds: []Feed{{Name: "a"}},
		Nodes: []Node{{
			Job:     processing.JobConfig{Name: "j", Inputs: []string{"missing"}},
			Outputs: []string{"a"},
		}},
	}
	if _, err := g.validate(); !errors.Is(err, ErrUnknownFeed) {
		t.Fatalf("err = %v", err)
	}
	g2 := Graph{
		Feeds: []Feed{{Name: "a"}},
		Nodes: []Node{{
			Job:     processing.JobConfig{Name: "j", Inputs: []string{"a"}},
			Outputs: []string{"missing"},
		}},
	}
	if _, err := g2.validate(); !errors.Is(err, ErrUnknownFeed) {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsDuplicates(t *testing.T) {
	g := Graph{Feeds: []Feed{{Name: "a"}, {Name: "a"}}}
	if _, err := g.validate(); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
	g2 := Graph{
		Feeds: []Feed{{Name: "a"}},
		Nodes: []Node{
			{Job: processing.JobConfig{Name: "j", Inputs: []string{"a"}}},
			{Job: processing.JobConfig{Name: "j", Inputs: []string{"a"}}},
		},
	}
	if _, err := g2.validate(); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateTopologicalOrder(t *testing.T) {
	// c consumes what b produces, b consumes what a produces; declared
	// in reverse to prove sorting.
	g := Graph{
		Feeds: []Feed{{Name: "f0"}, {Name: "f1"}, {Name: "f2"}, {Name: "f3"}},
		Nodes: []Node{
			{Job: processing.JobConfig{Name: "c", Inputs: []string{"f2"}}, Outputs: []string{"f3"}},
			{Job: processing.JobConfig{Name: "b", Inputs: []string{"f1"}}, Outputs: []string{"f2"}},
			{Job: processing.JobConfig{Name: "a", Inputs: []string{"f0"}}, Outputs: []string{"f1"}},
		},
	}
	order, err := g.validate()
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(order))
	for i, idx := range order {
		names[i] = g.Nodes[idx].Job.Name
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Fatalf("order = %v", names)
	}
}

func TestValidateRejectsCycles(t *testing.T) {
	g := Graph{
		Feeds: []Feed{{Name: "x"}, {Name: "y"}},
		Nodes: []Node{
			{Job: processing.JobConfig{Name: "p", Inputs: []string{"x"}}, Outputs: []string{"y"}},
			{Job: processing.JobConfig{Name: "q", Inputs: []string{"y"}}, Outputs: []string{"x"}},
		},
	}
	if _, err := g.validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v", err)
	}
	g.AllowCycles = true
	order, err := g.validate()
	if err != nil || len(order) != 2 {
		t.Fatalf("cyclic order = %v, %v", order, err)
	}
}

func TestSelfLoopAllowed(t *testing.T) {
	// A job feeding its own input feed (e.g. retry queues) is legal.
	g := Graph{
		Feeds: []Feed{{Name: "loop"}},
		Nodes: []Node{{
			Job:     processing.JobConfig{Name: "again", Inputs: []string{"loop"}},
			Outputs: []string{"loop"},
		}},
	}
	if _, err := g.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRunsPipelineEndToEnd(t *testing.T) {
	s := startStack(t)
	g := Graph{
		Feeds: []Feed{
			{Name: "raw", Partitions: 2},
			{Name: "upper", Partitions: 2},
			{Name: "final", Partitions: 2},
		},
		Nodes: []Node{
			{
				Job: processing.JobConfig{
					Name:     "stage2",
					Inputs:   []string{"upper"},
					Factory:  forwardTask("final", func(v string) string { return v + "!" }),
					PollWait: 20 * time.Millisecond,
				},
				Outputs: []string{"final"},
			},
			{
				Job: processing.JobConfig{
					Name:     "stage1",
					Inputs:   []string{"raw"},
					Factory:  forwardTask("upper", strings.ToUpper),
					PollWait: 20 * time.Millisecond,
				},
				Outputs: []string{"upper"},
			},
		},
	}
	run, err := Build(s, g)
	if err != nil {
		t.Fatal(err)
	}
	defer run.Stop()
	if len(run.Jobs()) != 2 || run.Jobs()[0].Name() != "stage1" {
		t.Fatalf("startup order wrong: %v", jobNames(run))
	}

	p := s.NewProducer(client.ProducerConfig{})
	defer p.Close()
	for i := 0; i < 10; i++ {
		if err := p.Send(client.Message{Topic: "raw", Value: []byte(fmt.Sprintf("ev%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()

	cons := s.NewConsumer(client.ConsumerConfig{})
	defer cons.Close()
	cons.Assign("final", 0, client.StartEarliest)
	cons.Assign("final", 1, client.StartEarliest)
	seen := map[string]bool{}
	deadline := time.Now().Add(20 * time.Second)
	for len(seen) < 10 && time.Now().Before(deadline) {
		msgs, err := cons.Poll(200 * time.Millisecond)
		if err != nil {
			continue
		}
		for _, m := range msgs {
			seen[string(m.Value)] = true
		}
	}
	for i := 0; i < 10; i++ {
		want := fmt.Sprintf("EV%d!", i)
		if !seen[want] {
			t.Fatalf("missing %q in final feed; have %v", want, seen)
		}
	}
}

func TestBuildCreatesAndReusesFeeds(t *testing.T) {
	s := startStack(t)
	// Pre-create one feed; Build must tolerate it.
	if err := s.CreateFeed("pre", 1, 1); err != nil {
		t.Fatal(err)
	}
	g := Graph{
		Feeds: []Feed{{Name: "pre"}, {Name: "made", Compacted: true}},
		Nodes: []Node{{
			Job: processing.JobConfig{
				Name:    "noop",
				Inputs:  []string{"pre"},
				Factory: forwardTask("made", nil),
			},
			Outputs: []string{"made"},
		}},
	}
	run, err := Build(s, g)
	if err != nil {
		t.Fatal(err)
	}
	defer run.Stop()
	if n, err := s.Client().PartitionCount("made"); err != nil || n != 1 {
		t.Fatalf("made: %d, %v", n, err)
	}
}

func jobNames(r *Running) []string {
	out := make([]string, 0, len(r.jobs))
	for _, j := range r.jobs {
		out = append(out, j.Name())
	}
	return out
}

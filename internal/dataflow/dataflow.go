// Package dataflow composes processing-layer jobs into dataflow graphs
// (paper §3.2: "jobs can communicate with other jobs, forming a dataflow
// processing graph; all jobs are decoupled by writing to and reading from
// the messaging layer"). A Graph declares feeds and jobs; Build validates
// the wiring (inputs exist, no undeclared feeds, acyclic job order for
// readable startup), creates missing topics, and starts jobs in
// topological order. Because every edge is a feed in the messaging layer,
// stages never back-pressure one another.
package dataflow

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/processing"
	"repro/internal/wire"
)

// Errors returned by graph validation.
var (
	// ErrUnknownFeed reports a job referencing an undeclared feed.
	ErrUnknownFeed = errors.New("dataflow: unknown feed")
	// ErrDuplicate reports a feed or job declared twice.
	ErrDuplicate = errors.New("dataflow: duplicate declaration")
	// ErrCycle reports a cyclic job graph. Cycles of jobs are legal in
	// the runtime (feeds decouple them) but almost always a config bug,
	// so Build rejects them unless AllowCycles is set.
	ErrCycle = errors.New("dataflow: job graph has a cycle")
)

// Feed declares one topic in the graph.
type Feed struct {
	Name       string
	Partitions int32
	// Replication 0 uses the graph default.
	Replication int16
	// Compacted selects key-based compaction.
	Compacted bool
}

// Node declares one job and its input/output feeds. Outputs are used for
// validation and ordering only; tasks still emit through the Collector.
type Node struct {
	Job     processing.JobConfig
	Outputs []string
}

// Graph is a declarative multi-job dataflow.
type Graph struct {
	// Feeds declares every topic the graph touches.
	Feeds []Feed
	// Nodes declares the jobs.
	Nodes []Node
	// DefaultReplication applies to feeds that leave Replication zero.
	DefaultReplication int16
	// AllowCycles permits cyclic job graphs (feeds make them safe).
	AllowCycles bool
}

// Running is a started dataflow.
type Running struct {
	jobs []*processing.Job
}

// Jobs returns the started jobs in startup (topological) order.
func (r *Running) Jobs() []*processing.Job { return r.jobs }

// Stop stops all jobs in reverse topological order, so downstream
// consumers drain before upstream producers stop feeding them.
func (r *Running) Stop() error {
	var first error
	for i := len(r.jobs) - 1; i >= 0; i-- {
		if err := r.jobs[i].Stop(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Build validates the graph, creates missing feeds, and starts every job
// on the stack in topological order.
func Build(s *core.Stack, g Graph) (*Running, error) {
	order, err := g.validate()
	if err != nil {
		return nil, err
	}
	rep := g.DefaultReplication
	if rep == 0 {
		rep = 1
	}
	for _, f := range g.Feeds {
		r := f.Replication
		if r == 0 {
			r = rep
		}
		parts := f.Partitions
		if parts == 0 {
			parts = 1
		}
		err := s.CreateTopic(wire.TopicSpec{
			Name:              f.Name,
			NumPartitions:     parts,
			ReplicationFactor: r,
			Compacted:         f.Compacted,
		})
		if err != nil && wire.Code(err) != wire.ErrTopicAlreadyExists {
			return nil, fmt.Errorf("dataflow: feed %s: %w", f.Name, err)
		}
	}
	running := &Running{}
	for _, idx := range order {
		job, err := s.RunJob(g.Nodes[idx].Job)
		if err != nil {
			running.Stop()
			return nil, fmt.Errorf("dataflow: job %s: %w", g.Nodes[idx].Job.Name, err)
		}
		running.jobs = append(running.jobs, job)
	}
	return running, nil
}

// validate checks feed references and uniqueness, returning a topological
// order of node indexes (upstream jobs first).
func (g Graph) validate() ([]int, error) {
	feeds := make(map[string]bool, len(g.Feeds))
	for _, f := range g.Feeds {
		if f.Name == "" {
			return nil, fmt.Errorf("%w: feed with empty name", ErrUnknownFeed)
		}
		if feeds[f.Name] {
			return nil, fmt.Errorf("%w: feed %s", ErrDuplicate, f.Name)
		}
		feeds[f.Name] = true
	}
	names := make(map[string]bool, len(g.Nodes))
	producerOf := make(map[string][]int) // feed -> producing node indexes
	for i, n := range g.Nodes {
		if n.Job.Name == "" {
			return nil, errors.New("dataflow: job with empty name")
		}
		if names[n.Job.Name] {
			return nil, fmt.Errorf("%w: job %s", ErrDuplicate, n.Job.Name)
		}
		names[n.Job.Name] = true
		for _, in := range n.Job.Inputs {
			if !feeds[in] {
				return nil, fmt.Errorf("%w: %s (input of %s)", ErrUnknownFeed, in, n.Job.Name)
			}
		}
		for _, out := range n.Outputs {
			if !feeds[out] {
				return nil, fmt.Errorf("%w: %s (output of %s)", ErrUnknownFeed, out, n.Job.Name)
			}
			producerOf[out] = append(producerOf[out], i)
		}
	}
	// Edges: producer -> consumer through shared feeds.
	adj := make([][]int, len(g.Nodes))
	indeg := make([]int, len(g.Nodes))
	for i, n := range g.Nodes {
		for _, in := range n.Job.Inputs {
			for _, p := range producerOf[in] {
				if p == i {
					continue // self-loop through a feed: allowed
				}
				adj[p] = append(adj[p], i)
				indeg[i]++
			}
		}
	}
	// Kahn's algorithm with deterministic (sorted) tie-breaking.
	var ready []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	var order []int
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		order = append(order, i)
		next := ready[:len(ready):len(ready)]
		for _, j := range adj[i] {
			indeg[j]--
			if indeg[j] == 0 {
				next = append(next, j)
			}
		}
		sort.Ints(next)
		ready = next
	}
	if len(order) != len(g.Nodes) {
		if !g.AllowCycles {
			return nil, ErrCycle
		}
		// Append the cyclic remainder in declaration order.
		in := make(map[int]bool, len(order))
		for _, i := range order {
			in[i] = true
		}
		for i := range g.Nodes {
			if !in[i] {
				order = append(order, i)
			}
		}
	}
	return order, nil
}

package isolation

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic rate tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func TestRateNilAndUnlimited(t *testing.T) {
	var r *Rate
	if d := r.Charge(1 << 30); d != 0 {
		t.Fatalf("nil rate charged penalty %v", d)
	}
	if s := r.Usage(); s != (RateStats{}) {
		t.Fatalf("nil rate usage %+v", s)
	}
	u := NewRate(RateConfig{}) // PerSec 0 = unlimited
	if d := u.Charge(1 << 30); d != 0 {
		t.Fatalf("unlimited rate charged penalty %v", d)
	}
}

func TestRateWithinBurstIsFree(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRate(RateConfig{PerSec: 1000, Burst: 500, Now: clk.Now})
	if d := r.Charge(500); d != 0 {
		t.Fatalf("charge within burst penalised: %v", d)
	}
}

func TestRateDeficitPenalty(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRate(RateConfig{PerSec: 1000, Burst: 1000, Now: clk.Now})
	// Burst drained plus 500 units over: deficit/rate = 500ms.
	if d := r.Charge(1500); d != 500*time.Millisecond {
		t.Fatalf("penalty = %v, want 500ms", d)
	}
	s := r.Usage()
	if s.Throttles != 1 || s.Penalty != 500*time.Millisecond || s.Charged != 1500 {
		t.Fatalf("stats %+v", s)
	}
	// After the penalty has elapsed the bucket is exactly balanced again.
	clk.Advance(500 * time.Millisecond)
	if d := r.Charge(100); d != 100*time.Millisecond {
		t.Fatalf("follow-up penalty = %v, want 100ms", d)
	}
}

func TestRateRefillCapsAtBurst(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRate(RateConfig{PerSec: 100, Burst: 50, Now: clk.Now})
	clk.Advance(time.Hour) // refill must cap at Burst, not accumulate 360k
	if d := r.Charge(51); d == 0 {
		t.Fatal("charge beyond capped burst should penalise")
	}
}

func TestRateSustainedMatchesConfiguredRate(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRate(RateConfig{PerSec: 1000, Now: clk.Now})
	// Charging exactly the rate each second never penalises after the
	// bucket reaches steady state.
	r.Charge(1000) // drain the burst
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second)
		if d := r.Charge(1000); d != 0 {
			t.Fatalf("steady-state charge %d penalised: %v", i, d)
		}
	}
	// Charging double the rate accrues ~1s of penalty per second.
	clk.Advance(time.Second)
	r.Charge(1000)
	if d := r.Charge(1000); d < 900*time.Millisecond {
		t.Fatalf("overload penalty = %v, want ~1s", d)
	}
}

func TestRateConcurrentCharges(t *testing.T) {
	r := NewRate(RateConfig{PerSec: 1e9})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Charge(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Usage().Charged; got != 8000 {
		t.Fatalf("charged %v, want 8000", got)
	}
}

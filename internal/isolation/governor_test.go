package isolation

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeTime is a deterministic clock whose Sleep advances it.
type fakeTime struct {
	mu sync.Mutex
	t  time.Time
	// slept accumulates simulated sleep.
	slept time.Duration
}

func (f *fakeTime) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeTime) sleep(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
	f.slept += d
}

func newFakeGovernor(share float64, burst time.Duration) (*Governor, *fakeTime) {
	ft := &fakeTime{t: time.Unix(0, 0)}
	g := New(Config{CPUShare: share, Burst: burst, Now: ft.now, Sleep: ft.sleep})
	return g, ft
}

func TestChargeWithinBurstDoesNotThrottle(t *testing.T) {
	g, ft := newFakeGovernor(0.5, 100*time.Millisecond)
	g.Charge(50 * time.Millisecond)
	if ft.slept != 0 {
		t.Fatalf("slept %v inside burst", ft.slept)
	}
	if got := g.Usage().CPUCharged; got != 50*time.Millisecond {
		t.Fatalf("charged = %v", got)
	}
}

func TestChargeBeyondBurstThrottles(t *testing.T) {
	g, ft := newFakeGovernor(0.5, 50*time.Millisecond)
	// Consume 150ms of CPU instantly with a 50ms burst at 50% share:
	// deficit 100ms -> sleep 200ms.
	g.Charge(150 * time.Millisecond)
	if ft.slept != 200*time.Millisecond {
		t.Fatalf("slept %v, want 200ms", ft.slept)
	}
	s := g.Usage()
	if s.ThrottleCount != 1 || s.Throttled != 200*time.Millisecond {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTokensRefillOverTime(t *testing.T) {
	g, ft := newFakeGovernor(0.5, 50*time.Millisecond)
	g.Charge(50 * time.Millisecond) // exhaust burst
	ft.sleep(200 * time.Millisecond)
	// 200ms elapsed at 50% refills 100ms, capped at 50ms burst.
	g.Charge(50 * time.Millisecond)
	if s := g.Usage(); s.ThrottleCount != 0 {
		t.Fatalf("throttled after refill: %+v", s)
	}
}

func TestSteadyStateRate(t *testing.T) {
	g, ft := newFakeGovernor(0.25, 10*time.Millisecond)
	// Charge 1s of CPU in 10ms chunks with no wall time passing except
	// the governor's own sleeps: total wall time must be ~= 1s / 0.25.
	start := ft.now()
	for i := 0; i < 100; i++ {
		g.Charge(10 * time.Millisecond)
	}
	elapsed := ft.now().Sub(start)
	want := 4 * time.Second
	if elapsed < want-100*time.Millisecond || elapsed > want+100*time.Millisecond {
		t.Fatalf("1s of CPU at 25%% took %v, want ~%v", elapsed, want)
	}
}

func TestNilGovernorIsUnlimited(t *testing.T) {
	var g *Governor
	g.Charge(time.Hour) // must not panic or block
	g.Meter(func() {})
	if err := g.ReserveMemory(1 << 40); err != nil {
		t.Fatal(err)
	}
	g.ReleaseMemory(1 << 40)
	if s := g.Usage(); s.CPUCharged != 0 {
		t.Fatalf("nil governor accounted: %+v", s)
	}
}

func TestZeroShareIsUnlimited(t *testing.T) {
	g, ft := newFakeGovernor(0, 0)
	g.Charge(time.Hour)
	if ft.slept != 0 {
		t.Fatal("zero share should not throttle")
	}
}

func TestMeterCharges(t *testing.T) {
	g, ft := newFakeGovernor(1.0, time.Millisecond)
	ran := false
	g.Meter(func() {
		ran = true
		ft.sleep(10 * time.Millisecond) // simulated work time
	})
	if !ran {
		t.Fatal("Meter did not run fn")
	}
	if got := g.Usage().CPUCharged; got != 10*time.Millisecond {
		t.Fatalf("charged %v, want 10ms", got)
	}
}

func TestMemoryBudget(t *testing.T) {
	g := New(Config{MemoryBytes: 1000})
	if err := g.ReserveMemory(600); err != nil {
		t.Fatal(err)
	}
	if err := g.ReserveMemory(600); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("over-budget reserve: %v", err)
	}
	g.ReleaseMemory(600)
	if err := g.ReserveMemory(600); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if got := g.Usage().MemoryInUse; got != 600 {
		t.Fatalf("in use = %d", got)
	}
	g.ReleaseMemory(9999) // over-release clamps to zero
	if got := g.Usage().MemoryInUse; got != 0 {
		t.Fatalf("after over-release = %d", got)
	}
}

func TestUnlimitedMemory(t *testing.T) {
	g := New(Config{})
	if err := g.ReserveMemory(1 << 50); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCharges(t *testing.T) {
	g := New(Config{CPUShare: 100, Burst: time.Second}) // effectively unlimited
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Charge(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := g.Usage().CPUCharged; got != 800*time.Microsecond {
		t.Fatalf("charged %v, want 800µs", got)
	}
}

// TestThrottlingShapesRealWork exercises the governor with the real clock:
// a 10%-share job burning CPU must take ~10x its CPU time in wall time.
func TestThrottlingShapesRealWork(t *testing.T) {
	g := New(Config{CPUShare: 0.10, Burst: time.Millisecond})
	start := time.Now()
	var cpu time.Duration
	for cpu < 20*time.Millisecond {
		s := time.Now()
		for time.Since(s) < time.Millisecond {
			// busy loop ~1ms
		}
		d := time.Since(s)
		cpu += d
		g.Charge(d)
	}
	wall := time.Since(start)
	if wall < 100*time.Millisecond {
		t.Fatalf("20ms CPU at 10%% share finished in %v; throttling ineffective", wall)
	}
}

package isolation

import (
	"sync"
	"time"
)

// RateConfig bounds a rate-governed resource (bytes/sec, requests/sec).
// It is the multi-tenant sibling of Config: where Governor blocks a job's
// own goroutine to keep it inside a CPU budget, Rate never blocks — it
// charges work and returns the delay the *caller* should impose, which is
// what a broker handler needs (it must answer immediately and tell the
// client how long to back off, paper §4.4 / Kafka-style quotas).
type RateConfig struct {
	// PerSec is the sustained rate (units per second). Zero or negative
	// disables governance: Charge always returns 0.
	PerSec float64
	// Burst is how many units may be consumed ahead of the refill rate
	// before a penalty accrues (default: one second's worth).
	Burst float64
	// Now is injectable for tests.
	Now func() time.Time
}

func (c RateConfig) withDefaults() RateConfig {
	if c.Burst == 0 {
		c.Burst = c.PerSec
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// RateStats snapshots a rate governor's accounting.
type RateStats struct {
	// Charged is the total units charged.
	Charged float64
	// Throttles counts charges that returned a non-zero penalty.
	Throttles int64
	// Penalty is the cumulative delay handed back to callers.
	Penalty time.Duration
}

// Rate is a non-blocking token bucket. A nil *Rate is valid and enforces
// nothing, so ungoverned principals skip all accounting. All methods are
// safe for concurrent use.
type Rate struct {
	cfg RateConfig

	mu     sync.Mutex
	tokens float64 // may go negative; the deficit sets the penalty
	last   time.Time
	stats  RateStats
}

// NewRate creates a rate governor. PerSec <= 0 returns a governor that
// never throttles (equivalent to nil, but non-nil for uniform wiring).
func NewRate(cfg RateConfig) *Rate {
	cfg = cfg.withDefaults()
	return &Rate{cfg: cfg, tokens: cfg.Burst, last: cfg.Now()}
}

// Charge records n consumed units and returns the delay the caller should
// impose on the principal before its next request — zero while the bucket
// has tokens, deficit/rate once it runs dry. It never sleeps: the broker
// charges, responds with the penalty, and moves on.
func (r *Rate) Charge(n float64) time.Duration {
	if r == nil || r.cfg.PerSec <= 0 || n <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.cfg.Now()
	// Refill for wall time elapsed since the last charge.
	r.tokens += now.Sub(r.last).Seconds() * r.cfg.PerSec
	if r.tokens > r.cfg.Burst {
		r.tokens = r.cfg.Burst
	}
	r.last = now
	r.tokens -= n
	r.stats.Charged += n
	if r.tokens >= 0 {
		return 0
	}
	penalty := time.Duration(-r.tokens / r.cfg.PerSec * float64(time.Second))
	r.stats.Throttles++
	r.stats.Penalty += penalty
	return penalty
}

// Usage snapshots the accounting.
func (r *Rate) Usage() RateStats {
	if r == nil {
		return RateStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

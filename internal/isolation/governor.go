// Package isolation implements per-job resource governance, standing in
// for the container-based OS isolation (YARN/cgroups) the paper uses to
// offer "ETL-as-a-service" (§3.2, §4.4): a runaway job must not degrade
// co-located jobs. CPU is governed with a CFS-bandwidth-style token bucket
// charged with measured execution time; memory with a reservation budget.
package isolation

import (
	"errors"
	"sync"
	"time"
)

// ErrMemoryBudget reports a reservation beyond the job's memory budget.
var ErrMemoryBudget = errors.New("isolation: memory budget exceeded")

// Config bounds one job's resources. Zero values mean unlimited.
type Config struct {
	// CPUShare is the fraction of one core the job may consume
	// (0.25 = 25%). Zero disables CPU throttling.
	CPUShare float64
	// Burst is how much CPU time may be consumed ahead of the refill
	// rate before throttling kicks in.
	Burst time.Duration
	// MemoryBytes bounds reserved memory (state store sizes). Zero
	// disables the memory budget.
	MemoryBytes int64
	// Now and Sleep are injectable for tests.
	Now   func() time.Time
	Sleep func(time.Duration)
}

func (c Config) withDefaults() Config {
	if c.Burst == 0 {
		c.Burst = 50 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// Stats snapshots a governor's accounting.
type Stats struct {
	CPUCharged    time.Duration
	Throttled     time.Duration
	MemoryInUse   int64
	MemoryBudget  int64
	ThrottleCount int64
}

// Governor enforces one job's resource budget. All methods are safe for
// concurrent use by the job's tasks.
type Governor struct {
	cfg Config

	mu         sync.Mutex
	tokens     time.Duration // available CPU time (can go negative)
	lastRefill time.Time
	memUsed    int64
	stats      Stats
}

// New creates a governor. A nil *Governor is valid and enforces nothing,
// so jobs without a budget skip all accounting.
func New(cfg Config) *Governor {
	cfg = cfg.withDefaults()
	return &Governor{cfg: cfg, tokens: cfg.Burst, lastRefill: cfg.Now()}
}

// Charge records d of consumed CPU time and blocks until the job is back
// within its budget — the moral equivalent of cgroup CPU bandwidth
// throttling. Call it after each unit of work with the measured duration.
func (g *Governor) Charge(d time.Duration) {
	if g == nil || g.cfg.CPUShare <= 0 || d <= 0 {
		return
	}
	g.mu.Lock()
	now := g.cfg.Now()
	// Refill tokens for wall time elapsed since the last charge.
	refill := time.Duration(float64(now.Sub(g.lastRefill)) * g.cfg.CPUShare)
	g.tokens += refill
	if g.tokens > g.cfg.Burst {
		g.tokens = g.cfg.Burst
	}
	g.lastRefill = now
	g.tokens -= d
	g.stats.CPUCharged += d
	var sleep time.Duration
	if g.tokens < 0 {
		// Sleep long enough for the deficit to refill.
		sleep = time.Duration(float64(-g.tokens) / g.cfg.CPUShare)
		g.stats.Throttled += sleep
		g.stats.ThrottleCount++
	}
	g.mu.Unlock()
	if sleep > 0 {
		g.cfg.Sleep(sleep)
	}
}

// Meter runs fn, charging its measured duration. Convenience for task
// loops.
func (g *Governor) Meter(fn func()) {
	if g == nil || g.cfg.CPUShare <= 0 {
		fn()
		return
	}
	start := g.cfg.Now()
	fn()
	g.Charge(g.cfg.Now().Sub(start))
}

// ReserveMemory claims n bytes of the budget, failing when it would
// exceed it (the job must shed state or stop, rather than destabilise its
// neighbours).
func (g *Governor) ReserveMemory(n int64) error {
	if g == nil || g.cfg.MemoryBytes <= 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.memUsed+n > g.cfg.MemoryBytes {
		return ErrMemoryBudget
	}
	g.memUsed += n
	return nil
}

// ReleaseMemory returns n bytes to the budget.
func (g *Governor) ReleaseMemory(n int64) {
	if g == nil || g.cfg.MemoryBytes <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.memUsed -= n
	if g.memUsed < 0 {
		g.memUsed = 0
	}
}

// Usage snapshots the accounting.
func (g *Governor) Usage() Stats {
	if g == nil {
		return Stats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.stats
	s.MemoryInUse = g.memUsed
	s.MemoryBudget = g.cfg.MemoryBytes
	return s
}

package chaos

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
)

// TestChaosSmokeQuotaFailover proves the multi-tenant quota config is a
// cluster property, not a broker property: an aggressor principal with a
// tight produce-byte quota is throttled by the original leader, the leader
// is killed mid-flood, and the hand-over leader — which never saw the
// AlterQuotas request — must keep throttling it, because the config is
// persisted in the coordination service and every broker resolves it from
// there. The standard workload invariants (no acked loss, offset
// contiguity, HW monotonicity, one leader per epoch) run throughout.
func TestChaosSmokeQuotaFailover(t *testing.T) {
	sc, err := StartScenario(ScenarioConfig{Name: "quota-failover", Seed: *chaosSeed})
	if err != nil {
		failSeed(t, *chaosSeed, "start: %v", err)
	}
	defer sc.Close()

	const principal = "quota-aggr"
	if err := sc.Stack.SetQuota(principal, cluster.QuotaConfig{ProduceBytesPerSec: 64 << 10}); err != nil {
		failSeed(t, sc.Cfg.Seed, "set quota: %v", err)
	}

	aggrCli, err := sc.Stack.NewClient(principal)
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "aggressor client: %v", err)
	}
	defer aggrCli.Close()
	aggr := client.NewProducer(aggrCli, client.ProducerConfig{Acks: client.AcksAll})
	defer aggr.Close()
	value := bytes.Repeat([]byte("q"), 32<<10)
	flood := func(i int) {
		// Errors are tolerated (the fault window rejects sends); the
		// throttle verdicts under test arrive on successful responses.
		_, _ = aggr.SendSync(client.Message{
			Topic: sc.Cfg.Topic,
			Key:   []byte(fmt.Sprintf("aggr-%06d", i)),
			Value: value,
		})
	}

	sc.StartProducers()
	if err := sc.AwaitAcked(100, 20*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "%v", err)
	}

	// Pre-fault: drain the 64KiB burst and force throttle verdicts.
	for i := 0; i < 4 && aggr.Throttled().Count == 0; i++ {
		flood(i)
	}
	if aggr.Throttled().Count == 0 {
		failSeed(t, sc.Cfg.Seed, "aggressor was never throttled by the original leader")
	}

	sc.MarkPreFault()
	old, err := sc.KillLeader(0)
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "kill leader: %v", err)
	}
	if _, err := sc.AwaitLeaderChange(0, old, 20*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "%v", err)
	}

	// Post-failover: the new leader must throttle the same principal from
	// the coord-persisted config (it builds a fresh bucket, so the first
	// burst's worth is free — keep flooding until a verdict lands).
	preFault := aggr.Throttled().Count
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; aggr.Throttled().Count == preFault; i++ {
		if time.Now().After(deadline) {
			failSeed(t, sc.Cfg.Seed, "aggressor never throttled by the hand-over leader")
		}
		flood(1000 + i)
	}

	// The co-tenant workload must keep making progress under the new
	// leader while the aggressor is held to its budget.
	if err := sc.AwaitAcked(sc.Ledger.Len()+100, 30*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "post-failover progress: %v", err)
	}
	mustFinish(t, sc)
}

package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/client"
)

// External is the node name of peers that dial without going through the
// network (or dial addresses it has never seen).
const External = "ext"

// ClientNode is the node name of stack clients (producers, consumers,
// archivers). Brokers are named by BrokerName.
const ClientNode = "client"

// ObserverNode is the node name of the invariant monitors' dedicated
// client. Scenarios fault ClientNode links to stress the data plane; the
// observation plane stays clean so a corrupted measurement can never
// masquerade as a broken invariant.
const ObserverNode = "observer"

// BrokerName renders the node name of a broker id.
func BrokerName(id int32) string { return fmt.Sprintf("broker-%d", id) }

// Network is a fault-injectable transport: it hands out listen and dial
// hooks that register every address and wrap every connection, and exposes
// controls to sever links, partition node groups and inject per-frame
// faults. All methods are safe for concurrent use.
type Network struct {
	seed int64

	mu       sync.Mutex
	owners   map[string]string // listen addr -> node name
	severed  map[link]bool
	isolated map[string]bool
	faults   map[link]Faults
	rngs     map[link]*rand.Rand
	conns    map[pair]map[*faultConn]struct{}
}

// NewNetwork creates a network whose fault schedule derives from seed.
func NewNetwork(seed int64) *Network {
	return &Network{
		seed:     seed,
		owners:   make(map[string]string),
		severed:  make(map[link]bool),
		isolated: make(map[string]bool),
		faults:   make(map[link]Faults),
		rngs:     make(map[link]*rand.Rand),
		conns:    make(map[pair]map[*faultConn]struct{}),
	}
}

// Seed returns the network's seed, printed by failing tests so any run is
// reproducible with -chaos.seed=N.
func (n *Network) Seed() int64 { return n.seed }

// Listen returns a listen hook that binds a real TCP listener and registers
// its address as belonging to node. Matches broker.Config.Listen.
func (n *Network) Listen(node string) func(host string, port int32) (net.Listener, error) {
	return func(host string, port int32) (net.Listener, error) {
		ln, err := net.Listen("tcp", fmt.Sprintf("%s:%d", host, port))
		if err != nil {
			return nil, err
		}
		n.mu.Lock()
		n.owners[ln.Addr().String()] = node
		n.mu.Unlock()
		return ln, nil
	}
}

// Dialer returns a dial hook for node. Dials resolve the target node from
// the address registry; the resulting connection is wrapped so both
// directions of its frames cross the link's fault rules.
func (n *Network) Dialer(node string) client.Dialer {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		to := n.ownerOf(addr)
		if n.dialBlocked(node, to) {
			return nil, fmt.Errorf("chaos: link %s->%s severed", node, to)
		}
		nc, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		fc := newFaultConn(n, nc, node, to)
		n.register(fc)
		// A sever that raced the dial must still cut this connection.
		if n.dialBlocked(node, to) {
			fc.Close()
			return nil, fmt.Errorf("chaos: link %s->%s severed", node, to)
		}
		return fc, nil
	}
}

// BrokerListen / BrokerDial / ClientDial adapt the node-name API to the
// id-based hook surface core.Config expects (core.FaultNetwork).

// BrokerListen returns the listen hook for a broker id.
func (n *Network) BrokerListen(id int32) func(host string, port int32) (net.Listener, error) {
	return n.Listen(BrokerName(id))
}

// BrokerDial returns the dial hook for a broker id's outbound connections.
func (n *Network) BrokerDial(id int32) client.Dialer { return n.Dialer(BrokerName(id)) }

// ClientDial returns the dial hook for stack clients.
func (n *Network) ClientDial() client.Dialer { return n.Dialer(ClientNode) }

// ownerOf resolves an address to its registered node, or External.
func (n *Network) ownerOf(addr string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if node, ok := n.owners[addr]; ok {
		return node
	}
	return External
}

// dialBlocked reports whether new connections from->to are currently
// forbidden (directional sever or either endpoint isolated).
func (n *Network) dialBlocked(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.severed[link{from: from, to: to}] || n.isolated[from] || n.isolated[to]
}

// register tracks a live connection under its node pair.
func (n *Network) register(c *faultConn) {
	p := pairOf(c.out.from, c.out.to)
	n.mu.Lock()
	defer n.mu.Unlock()
	set, ok := n.conns[p]
	if !ok {
		set = make(map[*faultConn]struct{})
		n.conns[p] = set
	}
	set[c] = struct{}{}
}

// unregister forgets a closed connection.
func (n *Network) unregister(c *faultConn) {
	p := pairOf(c.out.from, c.out.to)
	n.mu.Lock()
	defer n.mu.Unlock()
	if set, ok := n.conns[p]; ok {
		delete(set, c)
		if len(set) == 0 {
			delete(n.conns, p)
		}
	}
}

// faultsFor returns the active fault mix for a directional link.
func (n *Network) faultsFor(l link) Faults {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.faults[l]
}

// draw runs one per-frame fault decision on the link's deterministic PRNG.
// It returns the action to apply to this frame.
func (n *Network) draw(l link, f Faults) frameAction {
	n.mu.Lock()
	rng, ok := n.rngs[l]
	if !ok {
		rng = newLinkRand(n.seed, l)
		n.rngs[l] = rng
	}
	// One uniform draw per configured fault class, in a fixed order, so a
	// frame sequence maps to a stable PRNG consumption pattern.
	var act frameAction
	if f.DropRate > 0 && rng.Float64() < f.DropRate {
		act.drop = true
	}
	if f.DuplicateRate > 0 && rng.Float64() < f.DuplicateRate {
		act.duplicate = true
	}
	if f.CorruptRate > 0 && rng.Float64() < f.CorruptRate {
		act.corrupt = true
		act.corruptPos = rng.Int()
	}
	n.mu.Unlock()
	return act
}

// frameAction is one frame's drawn fault outcome.
type frameAction struct {
	drop       bool
	duplicate  bool
	corrupt    bool
	corruptPos int
}

// SetLinkFaults installs per-frame faults on the directional link from->to,
// replacing any previous mix. A zero Faults clears the link.
func (n *Network) SetLinkFaults(from, to string, f Faults) {
	l := link{from: from, to: to}
	n.mu.Lock()
	if f.active() {
		n.faults[l] = f
	} else {
		delete(n.faults, l)
	}
	n.mu.Unlock()
}

// Sever cuts the from->to direction: new dials from->to fail, and live
// connections between the pair are reset (a TCP session dies if either
// direction of its path is cut; only re-establishment is asymmetric).
func (n *Network) Sever(from, to string) {
	n.mu.Lock()
	n.severed[link{from: from, to: to}] = true
	victims := n.takeConnsLocked(pairOf(from, to))
	n.mu.Unlock()
	closeAll(victims)
}

// Unsever restores the from->to direction.
func (n *Network) Unsever(from, to string) {
	n.mu.Lock()
	delete(n.severed, link{from: from, to: to})
	n.mu.Unlock()
}

// Partition cuts every link between the two node groups, both directions —
// a classic symmetric network partition.
func (n *Network) Partition(groupA, groupB []string) {
	for _, a := range groupA {
		for _, b := range groupB {
			n.Sever(a, b)
			n.Sever(b, a)
		}
	}
}

// PartitionOneWay cuts only the from-group -> to-group direction: the
// asymmetric partition where one side can open connections and the other
// cannot.
func (n *Network) PartitionOneWay(fromGroup, toGroup []string) {
	for _, a := range fromGroup {
		for _, b := range toGroup {
			n.Sever(a, b)
		}
	}
}

// Isolate cuts a node off from everyone (brokers and clients alike) until
// HealNode. Live connections touching the node are reset.
func (n *Network) Isolate(node string) {
	n.mu.Lock()
	n.isolated[node] = true
	var victims []*faultConn
	for p, set := range n.conns {
		if p.a == node || p.b == node {
			for c := range set {
				victims = append(victims, c)
			}
			delete(n.conns, p)
		}
	}
	n.mu.Unlock()
	closeAll(victims)
}

// HealNode reconnects an isolated node and clears severs involving it.
func (n *Network) HealNode(node string) {
	n.mu.Lock()
	delete(n.isolated, node)
	for l := range n.severed {
		if l.from == node || l.to == node {
			delete(n.severed, l)
		}
	}
	n.mu.Unlock()
}

// Heal clears every sever, isolation and per-frame fault. Live connections
// are left alone; broken ones re-dial through the now-clean links.
func (n *Network) Heal() {
	n.mu.Lock()
	n.severed = make(map[link]bool)
	n.isolated = make(map[string]bool)
	n.faults = make(map[link]Faults)
	n.mu.Unlock()
}

// PartitionBrokers cuts links between two broker-id groups (both ways).
// Part of the core.FaultNetwork surface.
func (n *Network) PartitionBrokers(groupA, groupB []int32) {
	n.Partition(brokerNames(groupA), brokerNames(groupB))
}

// IsolateBroker cuts a broker off from every peer and client.
func (n *Network) IsolateBroker(id int32) { n.Isolate(BrokerName(id)) }

// HealBroker restores a broker's links.
func (n *Network) HealBroker(id int32) { n.HealNode(BrokerName(id)) }

// takeConnsLocked removes and returns the pair's live connections.
func (n *Network) takeConnsLocked(p pair) []*faultConn {
	set, ok := n.conns[p]
	if !ok {
		return nil
	}
	delete(n.conns, p)
	out := make([]*faultConn, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	return out
}

func closeAll(conns []*faultConn) {
	for _, c := range conns {
		c.Close()
	}
}

func brokerNames(ids []int32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = BrokerName(id)
	}
	return out
}

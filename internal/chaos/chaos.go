// Package chaos is the deterministic fault-injection layer for the stack's
// §4.3 fault-tolerance claims. The paper's messaging layer promises that
// replicated partitions survive broker failure ("a hand-over process selects
// a new leader among its followers"), that the ISR shrinks around lagging
// replicas, and that acknowledged records are never lost. Nothing proves
// such claims like killing the leader mid-produce — so this package makes
// that a repeatable, seeded operation instead of an outage.
//
// It has two halves:
//
//   - A fault-injecting transport: Network wraps the dial/listen hooks of
//     internal/broker and internal/client so every connection in a stack
//     crosses an injectable link. Links are directional and per-frame faults
//     (delay, drop, duplicate, corrupt) are drawn from a PRNG seeded per
//     link, so a scenario seed reproduces the same fault schedule. Links can
//     also be severed — asymmetrically, one dial direction at a time — to
//     model network partitions.
//
//   - A scenario runner (Scenario) that drives a live core.Stack through
//     scripted fault schedules — kill the leader during acks=all produce,
//     partition a follower past ReplicaMaxLag, crash the archiver between a
//     segment seal and its manifest commit, restart the controller — while
//     invariant checkers continuously assert the §4.3 guarantees: no
//     acked-record loss, high-watermark monotonicity, at most one leader per
//     epoch, consumed-offset contiguity, and exactly-once backfill.
//
// Determinism: the fault schedule is a pure function of (seed, link, frame
// sequence). Goroutine scheduling still interleaves frames of concurrent
// connections, so runs are not byte-identical — the invariants are what must
// hold on every schedule, and a failing seed reproduces the same fault mix.
package chaos

import (
	"hash/fnv"
	"math/rand"
	"time"
)

// Faults is the per-frame fault mix of one directional link. Rates are
// probabilities in [0,1] drawn per frame from the link's seeded PRNG.
type Faults struct {
	// Delay is added before each frame is passed on (both directions of a
	// round trip pay their own link's delay).
	Delay time.Duration
	// DropRate discards the frame and then resets the connection — a lost
	// frame on a stream transport is a broken session, and modelling it
	// that way keeps clients retrying instead of hanging forever.
	DropRate float64
	// DuplicateRate passes the frame on twice, modelling duplicate delivery
	// (the receiver sees a replayed request or a stale response and must
	// reject it by correlation id or offset dedup).
	DuplicateRate float64
	// CorruptRate flips one payload byte, modelling on-path corruption the
	// framing/CRC layers must detect (wire.ErrFrameTooLarge, record CRC).
	// Note the direction matters: request payloads carry CRCs (record
	// batches) and malformed requests are rejected, but responses have no
	// integrity check — corrupting the broker→client direction can forge
	// an acknowledgement, which no recovery protocol can survive.
	// Scenarios therefore corrupt the request direction and leave response
	// links to delay/duplicate faults.
	CorruptRate float64
}

// active reports whether any fault is configured.
func (f Faults) active() bool {
	return f.Delay > 0 || f.DropRate > 0 || f.DuplicateRate > 0 || f.CorruptRate > 0
}

// link is one direction of a node pair.
type link struct{ from, to string }

// pair is an unordered node pair, the granularity at which live connections
// are tracked (a TCP session dies if either direction is cut).
type pair struct{ a, b string }

func pairOf(x, y string) pair {
	if x > y {
		x, y = y, x
	}
	return pair{a: x, b: y}
}

// linkSeed derives a per-link PRNG seed from the network seed, so each
// link's fault schedule is independent of how many frames other links carry.
func linkSeed(seed int64, l link) int64 {
	h := fnv.New64a()
	h.Write([]byte(l.from))
	h.Write([]byte{0})
	h.Write([]byte(l.to))
	return seed ^ int64(h.Sum64())
}

// newLinkRand builds the deterministic PRNG for one link.
func newLinkRand(seed int64, l link) *rand.Rand {
	return rand.New(rand.NewSource(linkSeed(seed, l)))
}

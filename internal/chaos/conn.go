package chaos

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// ErrFrameDropped reports a frame the link discarded; the connection is
// reset alongside it, so callers observe a broken session and retry.
var ErrFrameDropped = errors.New("chaos: frame dropped, connection reset")

// faultConn wraps one dialed connection and applies the network's current
// per-frame faults in both directions. It understands the wire layer's
// 4-byte length-prefixed framing, so faults land on whole protocol frames —
// dropping or duplicating a frame never tears the stream mid-message (the
// corrupt fault flips payload bytes on purpose, for the CRC/framing layers
// to catch). Streams that stop looking like frames (a corrupt length beyond
// wire.MaxFrameSize) fall back to raw passthrough so the receiver sees the
// violation instead of the injector wedging.
type faultConn struct {
	nc  net.Conn
	n   *Network
	out link // write direction: dialer -> target
	in  link // read direction: target -> dialer

	wmu   sync.Mutex
	wpend []byte // bytes written but not yet forming a complete frame
	wraw  bool   // write passthrough (stream no longer framed)

	rmu   sync.Mutex
	rpend []byte // decoded frame bytes ready for delivery
	rraw  bool   // read passthrough

	closeOnce sync.Once
}

func newFaultConn(n *Network, nc net.Conn, from, to string) *faultConn {
	return &faultConn{
		nc:  nc,
		n:   n,
		out: link{from: from, to: to},
		in:  link{from: to, to: from},
	}
}

// Write buffers bytes until a whole frame is present, then applies the
// out-link's faults to the frame and forwards it.
func (c *faultConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.wraw {
		return c.nc.Write(p)
	}
	// Frames are always tracked (not only while faults are active) so the
	// injector stays frame-aligned when faults switch on mid-connection.
	c.wpend = append(c.wpend, p...)
	for {
		frame, ok := cutFrame(c.wpend)
		if !ok {
			if len(c.wpend) >= 4 && frameLen(c.wpend) > wire.MaxFrameSize {
				// Not framed traffic (or already-corrupt length): stop
				// interpreting and pass the stream through.
				c.wraw = true
				if _, err := c.nc.Write(c.wpend); err != nil {
					return len(p), err
				}
				c.wpend = nil
			}
			return len(p), nil
		}
		if err := c.forwardFrame(frame, c.out, c.n.faultsFor(c.out)); err != nil {
			return len(p), err
		}
		c.wpend = append(c.wpend[:0], c.wpend[len(frame):]...)
	}
}

// Read delivers one faulted frame at a time from the in-link.
func (c *faultConn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.rpend) == 0 {
		if c.rraw {
			return c.nc.Read(p)
		}
		f := c.n.faultsFor(c.in)
		frame, raw, err := c.readFrame()
		if err != nil {
			return 0, err
		}
		if raw != nil {
			// Unframed bytes: deliver and switch to passthrough.
			c.rraw = true
			c.rpend = raw
			break
		}
		act := c.n.draw(c.in, f)
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		if act.drop {
			c.Close()
			return 0, ErrFrameDropped
		}
		if act.corrupt {
			corruptFrame(frame, act.corruptPos)
		}
		c.rpend = frame
		if act.duplicate {
			c.rpend = append(c.rpend, frame...)
		}
	}
	n := copy(p, c.rpend)
	c.rpend = c.rpend[n:]
	if len(c.rpend) == 0 {
		c.rpend = nil
	}
	return n, nil
}

// forwardFrame applies the link faults to one complete frame and writes it.
func (c *faultConn) forwardFrame(frame []byte, l link, f Faults) error {
	act := c.n.draw(l, f)
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if act.drop {
		c.Close()
		return ErrFrameDropped
	}
	if act.corrupt {
		// Corrupt a copy: the caller's buffer may be pooled.
		dup := append([]byte(nil), frame...)
		corruptFrame(dup, act.corruptPos)
		frame = dup
	}
	if _, err := c.nc.Write(frame); err != nil {
		return err
	}
	if act.duplicate {
		if _, err := c.nc.Write(frame); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one length-prefixed frame (header included) from the
// underlying connection. When the stream stops looking framed it returns
// the bytes read so far as raw instead.
func (c *faultConn) readFrame() (frame, raw []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.nc, hdr[:]); err != nil {
		return nil, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > wire.MaxFrameSize {
		return nil, hdr[:], nil
	}
	buf := make([]byte, 4+n)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(c.nc, buf[4:]); err != nil {
		return nil, nil, err
	}
	return buf, nil, nil
}

// cutFrame returns the leading complete frame of buf (header included).
func cutFrame(buf []byte) ([]byte, bool) {
	if len(buf) < 4 {
		return nil, false
	}
	n := frameLen(buf)
	if n > wire.MaxFrameSize || len(buf) < 4+int(n) {
		return nil, false
	}
	return buf[:4+int(n)], true
}

func frameLen(buf []byte) uint32 { return binary.BigEndian.Uint32(buf[:4]) }

// corruptFrame flips one payload byte (or a header byte on empty payloads),
// deterministically positioned by the link PRNG draw.
func corruptFrame(frame []byte, pos int) {
	if len(frame) > 4 {
		frame[4+pos%(len(frame)-4)] ^= 0xFF
		return
	}
	frame[pos%len(frame)] ^= 0xFF
}

// Close resets the connection and unregisters it from the network.
func (c *faultConn) Close() error {
	c.closeOnce.Do(func() { c.n.unregister(c) })
	return c.nc.Close()
}

func (c *faultConn) LocalAddr() net.Addr                { return c.nc.LocalAddr() }
func (c *faultConn) RemoteAddr() net.Addr               { return c.nc.RemoteAddr() }
func (c *faultConn) SetDeadline(t time.Time) error      { return c.nc.SetDeadline(t) }
func (c *faultConn) SetReadDeadline(t time.Time) error  { return c.nc.SetReadDeadline(t) }
func (c *faultConn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

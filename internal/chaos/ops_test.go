package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// opsGet fetches one ops-endpoint body, tolerating dead brokers (the
// caller decides whether an error is fatal).
func opsGet(addr, path string) (int, []byte, error) {
	cli := http.Client{Timeout: 5 * time.Second}
	resp, err := cli.Get("http://" + addr + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

// scrapeGroupLag returns every broker.group.lag sample for the group
// across all live ops endpoints.
func scrapeGroupLag(opsAddrs []string, group string) ([]obs.Sample, error) {
	var out []obs.Sample
	for _, addr := range opsAddrs {
		if addr == "" {
			continue
		}
		code, body, err := opsGet(addr, "/metrics")
		if err != nil {
			continue // dead broker; its peers answer
		}
		if code != http.StatusOK {
			return nil, fmt.Errorf("%s /metrics: status %d", addr, code)
		}
		samples, err := obs.LintExposition(body)
		if err != nil {
			return nil, fmt.Errorf("%s /metrics lint: %w", addr, err)
		}
		for _, s := range samples {
			if s.Name == "broker_group_lag" && s.Label("group") == group {
				out = append(out, s)
			}
		}
	}
	return out, nil
}

// TestChaosSmokeOpsFailover drives the ops plane through a leader kill:
// every broker's /metrics must stay lint-clean (unique series, typed
// families, monotone histogram buckets) before, during and after the
// fault, /healthz and /status and /debug/pprof/profile must answer on live
// brokers, the consumer-lag gauges must appear while a group is behind,
// and — once the group commits up to the high watermark after recovery —
// converge back to zero.
func TestChaosSmokeOpsFailover(t *testing.T) {
	seed := *chaosSeed
	sc, err := StartScenario(ScenarioConfig{
		Name:    "ops-failover",
		Seed:    seed,
		OpsAddr: "127.0.0.1:0",
	})
	if err != nil {
		failSeed(t, seed, "start: %v", err)
	}
	defer sc.Close()

	opsAddrs := sc.Stack.OpsAddrs()
	for i, addr := range opsAddrs {
		if addr == "" {
			failSeed(t, seed, "broker %d has no ops server", i+1)
		}
	}

	sc.StartProducers()
	if err := sc.AwaitAcked(100, 20*time.Second); err != nil {
		failSeed(t, seed, "%v", err)
	}

	// A group committed at offset 0 is maximally behind: its lag gauge
	// must appear on the coordinator within a couple of exporter ticks.
	const group = "ops-lag-group"
	cli := sc.Stack.Client()
	if err := cli.CommitOffsets(group, map[string]map[int32]int64{sc.Cfg.Topic: {0: 0}}, nil); err != nil {
		failSeed(t, seed, "commit: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		lags, err := scrapeGroupLag(opsAddrs, group)
		if err != nil {
			failSeed(t, seed, "%v", err)
		}
		var behind bool
		for _, s := range lags {
			if s.Value > 0 {
				behind = true
			}
		}
		if behind {
			break
		}
		if time.Now().After(deadline) {
			failSeed(t, seed, "group lag gauge never appeared for %s", group)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The client-side view (what `liquid-admin lag` prints) must agree
	// that the group is behind.
	entries, err := cli.GroupLag(group)
	if err != nil {
		failSeed(t, seed, "GroupLag: %v", err)
	}
	if len(entries) == 0 {
		failSeed(t, seed, "client GroupLag returned nothing for %s", group)
	}

	// Every live broker answers the full ops surface.
	for _, addr := range opsAddrs {
		if code, _, err := opsGet(addr, "/healthz"); err != nil || code != http.StatusOK {
			failSeed(t, seed, "%s /healthz: code=%d err=%v", addr, code, err)
		}
		code, body, err := opsGet(addr, "/status")
		if err != nil || code != http.StatusOK {
			failSeed(t, seed, "%s /status: code=%d err=%v", addr, code, err)
		}
		var st struct {
			Broker     int32 `json:"broker"`
			Partitions []struct {
				Topic string `json:"topic"`
			} `json:"partitions"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			failSeed(t, seed, "%s /status JSON: %v", addr, err)
		}
		if len(st.Partitions) == 0 {
			failSeed(t, seed, "%s /status reports no partitions", addr)
		}
		if code, body, err := opsGet(addr, "/debug/pprof/profile?seconds=1"); err != nil || code != http.StatusOK || len(body) == 0 {
			failSeed(t, seed, "%s pprof profile: code=%d len=%d err=%v", addr, code, len(body), err)
		}
	}

	// The fault: kill the partition leader mid-workload. The dead
	// broker's ops server dies with it; the survivors' must stay clean.
	sc.MarkPreFault()
	old, err := sc.KillLeader(0)
	if err != nil {
		failSeed(t, seed, "kill leader: %v", err)
	}
	if _, err := sc.AwaitLeaderChange(0, old, 20*time.Second); err != nil {
		failSeed(t, seed, "%v", err)
	}
	if err := sc.AwaitAcked(sc.Ledger.Len()+100, 30*time.Second); err != nil {
		failSeed(t, seed, "post-failover progress: %v", err)
	}
	if _, err := scrapeGroupLag(opsAddrs, group); err != nil {
		failSeed(t, seed, "post-failover scrape: %v", err)
	}

	// Standard invariants (acked survival, contiguity, HW monotonicity,
	// epoch safety, counter conservation) over the whole run.
	mustFinish(t, sc)

	// Convergence: with the workload stopped, committing up to the high
	// watermark must drive every exported lag tuple for the group to 0.
	hw, err := cli.ListOffset(sc.Cfg.Topic, 0, wire.TimestampLatest)
	if err != nil {
		failSeed(t, seed, "list offset: %v", err)
	}
	if err := cli.CommitOffsets(group, map[string]map[int32]int64{sc.Cfg.Topic: {0: hw}}, nil); err != nil {
		failSeed(t, seed, "post-recovery commit: %v", err)
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		lags, err := scrapeGroupLag(opsAddrs, group)
		if err != nil {
			failSeed(t, seed, "%v", err)
		}
		converged := len(lags) > 0
		for _, s := range lags {
			if s.Value != 0 {
				converged = false
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			detail := ""
			for _, s := range lags {
				detail += " " + s.Label("topic") + "/" + s.Label("partition") + "=" + strconv.FormatFloat(s.Value, 'f', -1, 64)
			}
			failSeed(t, seed, "group lag never converged to 0:%s", detail)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

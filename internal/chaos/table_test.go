package chaos

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// TestChaosSmokeTableFailover kills the leader of a queryable table
// partition mid-materialization: the dead leader owned the only live
// in-memory view, so the hand-over leader must rebuild it from its
// replicated compacted log (changelog bootstrap from offset 0) before it can
// serve. After recovery, a point read at staleness bound 0 for every acked
// write must return exactly the acked value — the workload writes each
// unique value under its own key, so a lost update surfaces as not-found and
// a duplicated/reordered apply surfaces as a wrong value. The standard
// workload invariants (no acked loss, offset contiguity, HW monotonicity,
// one leader per epoch) run throughout.
func TestChaosSmokeTableFailover(t *testing.T) {
	sc, err := StartScenario(ScenarioConfig{
		Name: "table-failover",
		Seed: *chaosSeed,
		Spec: &wire.TopicSpec{Compacted: true, Table: true},
	})
	if err != nil {
		failSeed(t, *chaosSeed, "start: %v", err)
	}
	defer sc.Close()

	sc.StartProducers()
	// Enough acked volume that the original leader has a materialized view
	// worth losing before the fault lands.
	if err := sc.AwaitAcked(300, 20*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "%v", err)
	}

	sc.MarkPreFault()
	old, err := sc.KillLeader(0)
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "kill leader: %v", err)
	}
	if _, err := sc.AwaitLeaderChange(0, old, 20*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "%v", err)
	}
	// Keep writing through recovery so the rebuilt view must also absorb
	// post-failover appends, then stop the workload and check invariants.
	if err := sc.AwaitAcked(sc.Ledger.Len()+200, 30*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "post-failover progress: %v", err)
	}
	mustFinish(t, sc)

	// Every acked write, readable from the rebuilt view, exactly once: the
	// workload uses key == value with a unique value per send, so per-key
	// equality at lag bound 0 is the exactly-once check. The staleness bound
	// forces applied == hw at serve time; the client retries the retriable
	// stale/not-served codes while the successor rematerializes.
	cli := sc.Stack.Client()
	for _, v := range sc.Ledger.All() {
		res, err := cli.TableGet(sc.Cfg.Topic, 0, []byte(v), 0)
		if err != nil {
			failSeed(t, sc.Cfg.Seed, "table get %q after failover: %v", v, err)
		}
		if !res.Found || string(res.Value) != v {
			failSeed(t, sc.Cfg.Seed, "table get %q after failover: found=%v value=%q, want the acked value",
				v, res.Found, res.Value)
		}
	}

	// The rebuilt view's cardinality must cover at least the acked keys
	// (ambiguous acks lost with the old leader may legally add more).
	sts, err := sc.Stack.TableStatus(sc.Cfg.Topic)
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "table status after failover: %v", err)
	}
	if len(sts) != 1 {
		failSeed(t, sc.Cfg.Seed, "table status partitions = %d, want 1", len(sts))
	}
	if got, want := sts[0].ApproxLen, int64(sc.Ledger.Len()); got < want {
		failSeed(t, sc.Cfg.Seed, "rebuilt table holds %d keys, want >= %d acked", got, want)
	}
}

package chaos

import (
	"flag"
	"fmt"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/client"
)

// chaosSeed drives every scenario in this file. CI failures print the seed,
// so any red run reproduces locally with -chaos.seed=N.
var chaosSeed = flag.Int64("chaos.seed", 1, "fault schedule seed for chaos scenarios")

// failSeed fails the test with the reproduction command line attached.
func failSeed(t *testing.T, seed int64, format string, args ...any) {
	t.Helper()
	t.Fatalf("[chaos seed %d — rerun: go test ./internal/chaos -run '^%s$' -chaos.seed=%d]\n%s",
		seed, t.Name(), seed, fmt.Sprintf(format, args...))
}

// mustFinish runs the scenario's invariant checks and fails on violations.
func mustFinish(t *testing.T, sc *Scenario) {
	t.Helper()
	violations, err := sc.Finish()
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "scenario error: %v", err)
	}
	for _, v := range violations {
		t.Errorf("invariant violated: %s", v)
	}
	if len(violations) > 0 {
		failSeed(t, sc.Cfg.Seed, "%d invariant violations (acked=%d, produce errors=%d)",
			len(violations), sc.Ledger.Len(), sc.ProduceErrors())
	}
}

// TestChaosSmokeFailoverLeaderKill is the acceptance scenario: kill the
// partition leader while acks=all producers run, and assert no acked-record
// loss, HW monotonicity, one leader per epoch and offset contiguity. It
// repeats 3 times with the same seed — the invariants must hold on every
// schedule the seed produces.
func TestChaosSmokeFailoverLeaderKill(t *testing.T) {
	for run := 0; run < 3; run++ {
		run := run
		t.Run(fmt.Sprintf("run-%d", run), func(t *testing.T) {
			sc, err := StartScenario(ScenarioConfig{
				Name: fmt.Sprintf("leader-kill-%d", run),
				Seed: *chaosSeed,
			})
			if err != nil {
				failSeed(t, *chaosSeed, "start: %v", err)
			}
			defer sc.Close()
			sc.StartProducers()
			if err := sc.AwaitAcked(150, 20*time.Second); err != nil {
				failSeed(t, sc.Cfg.Seed, "%v", err)
			}
			sc.MarkPreFault()
			old, err := sc.KillLeader(0)
			if err != nil {
				failSeed(t, sc.Cfg.Seed, "kill leader: %v", err)
			}
			if _, err := sc.AwaitLeaderChange(0, old, 20*time.Second); err != nil {
				failSeed(t, sc.Cfg.Seed, "%v", err)
			}
			// The workload must make progress under the new leader.
			if err := sc.AwaitAcked(sc.Ledger.Len()+150, 30*time.Second); err != nil {
				failSeed(t, sc.Cfg.Seed, "post-failover progress: %v", err)
			}
			mustFinish(t, sc)
		})
	}
}

// TestChaosSmokeIdempotentRetry aims squarely at the acks=all
// resend-duplicate window: leaders are killed twice in a row while
// producers stream without any pause, so acks are routinely lost after the
// append landed and the client auto-retries into the new leader. Producer
// epochs + per-partition sequence dedup must collapse every such retry onto
// the original append — mustFinish checks the acked-dup invariant
// unconditionally (no pre-fault carve-out), alongside zero acked loss.
func TestChaosSmokeIdempotentRetry(t *testing.T) {
	sc, err := StartScenario(ScenarioConfig{
		Name:         "idempotent-retry",
		Seed:         *chaosSeed,
		Producers:    3,
		ProducePause: -1, // no pacing: keep produces in flight at kill time
	})
	if err != nil {
		failSeed(t, *chaosSeed, "start: %v", err)
	}
	defer sc.Close()
	sc.StartProducers()
	if err := sc.AwaitAcked(200, 20*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "%v", err)
	}
	sc.MarkPreFault()
	for kill := 0; kill < 2; kill++ {
		old, err := sc.KillLeader(0)
		if err != nil {
			failSeed(t, sc.Cfg.Seed, "kill %d: %v", kill, err)
		}
		if _, err := sc.AwaitLeaderChange(0, old, 20*time.Second); err != nil {
			failSeed(t, sc.Cfg.Seed, "kill %d: %v", kill, err)
		}
		// Progress under the new leader proves retried producers resumed
		// (their sequences advanced past the dedup'd resend).
		if err := sc.AwaitAcked(sc.Ledger.Len()+200, 30*time.Second); err != nil {
			failSeed(t, sc.Cfg.Seed, "post-failover %d progress: %v", kill, err)
		}
	}
	mustFinish(t, sc)
}

// TestChaosSmokeControllerKill crashes the broker holding the controller
// seat: another broker must win the re-election and repair any leadership
// the dead controller held, without violating the invariants.
func TestChaosSmokeControllerKill(t *testing.T) {
	sc, err := StartScenario(ScenarioConfig{Name: "controller-kill", Seed: *chaosSeed})
	if err != nil {
		failSeed(t, *chaosSeed, "start: %v", err)
	}
	defer sc.Close()
	sc.StartProducers()
	if err := sc.AwaitAcked(100, 20*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "%v", err)
	}
	sc.MarkPreFault()
	dead, err := sc.KillController()
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "kill controller: %v", err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if id := sc.Stack.ControllerID(); id >= 0 && id != dead {
			break
		}
		if time.Now().After(deadline) {
			failSeed(t, sc.Cfg.Seed, "controller seat never moved off %d", dead)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := sc.AwaitAcked(sc.Ledger.Len()+100, 30*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "post-election progress: %v", err)
	}
	mustFinish(t, sc)
}

// TestChaosSmokePartitionISRShrink severs an in-sync follower from the
// cluster: past ReplicaMaxLag the leader must shrink the ISR so acks=all
// produces keep completing, and after healing the follower must re-enter
// the ISR by catching up.
func TestChaosSmokePartitionISRShrink(t *testing.T) {
	sc, err := StartScenario(ScenarioConfig{
		Name:          "partition-follower",
		Seed:          *chaosSeed,
		ReplicaMaxLag: 500 * time.Millisecond,
	})
	if err != nil {
		failSeed(t, *chaosSeed, "start: %v", err)
	}
	defer sc.Close()
	sc.StartProducers()
	if err := sc.AwaitAcked(100, 20*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "%v", err)
	}
	sc.MarkPreFault()
	follower, err := sc.PartitionFollower(0)
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "partition follower: %v", err)
	}
	if err := sc.AwaitISRShrink(0, follower, 20*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "%v", err)
	}
	// acks=all still completes with the shrunken ISR.
	if err := sc.AwaitAcked(sc.Ledger.Len()+100, 30*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "progress with shrunken ISR: %v", err)
	}
	// Heal: the follower reconnects, catches up and rejoins the ISR.
	sc.Stack.HealBroker(follower)
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := sc.Stack.PartitionState(sc.Cfg.Topic, 0)
		if err == nil && st.InISR(follower) {
			break
		}
		if time.Now().After(deadline) {
			failSeed(t, sc.Cfg.Seed, "healed follower %d never rejoined the ISR", follower)
		}
		time.Sleep(20 * time.Millisecond)
	}
	mustFinish(t, sc)
}

// TestChaosSmokeFrameFaults runs the workload through links that delay,
// duplicate and corrupt frames. Duplicated produce requests may append
// twice and corrupt frames kill connections — the invariants under test are
// exactly the ones that must hold anyway: nothing acked is lost, the HW
// never regresses, offsets stay contiguous, epochs have one leader.
func TestChaosSmokeFrameFaults(t *testing.T) {
	sc, err := StartScenario(ScenarioConfig{
		Name:       "frame-faults",
		Seed:       *chaosSeed,
		Partitions: 2,
	})
	if err != nil {
		failSeed(t, *chaosSeed, "start: %v", err)
	}
	defer sc.Close()
	sc.StartProducers()
	if err := sc.AwaitAcked(100, 20*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "%v", err)
	}
	sc.MarkPreFault()
	// Requests get the full fault mix (batch CRCs and request validation
	// catch corruption); responses get delay + duplication only — a
	// response carries no integrity check, so corrupting it can forge an
	// acknowledgement, which no recovery protocol can survive.
	for id := int32(1); id <= int32(sc.Cfg.Brokers); id++ {
		sc.Net.SetLinkFaults(ClientNode, BrokerName(id), Faults{
			Delay:         time.Millisecond,
			DuplicateRate: 0.02,
			CorruptRate:   0.02,
		})
		sc.Net.SetLinkFaults(BrokerName(id), ClientNode, Faults{
			Delay:         time.Millisecond,
			DuplicateRate: 0.02,
		})
	}
	if err := sc.AwaitAcked(sc.Ledger.Len()+200, 60*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "progress under frame faults: %v", err)
	}
	sc.Net.Heal()
	mustFinish(t, sc)
}

// TestChaosSmokeArchiverCrash crashes the archiver in the widest recovery
// window (after manifest commits, with offset checkpoints suppressed), then
// restarts it and asserts the manifest recovery path yields a gapless,
// duplicate-free archive — and that Backfill delivers each archived record
// exactly once across repeated runs.
func TestChaosSmokeArchiverCrash(t *testing.T) {
	sc, err := StartScenario(ScenarioConfig{Name: "archiver-crash", Seed: *chaosSeed, Brokers: 1, Replication: 1})
	if err != nil {
		failSeed(t, *chaosSeed, "start: %v", err)
	}
	defer sc.Close()
	produce := func(from, to int) {
		prod := sc.Stack.NewProducer(client.ProducerConfig{})
		for i := from; i < to; i++ {
			if err := prod.Send(client.Message{
				Topic: sc.Cfg.Topic,
				Key:   []byte(fmt.Sprintf("k-%03d", i)),
				Value: []byte(fmt.Sprintf("v-%03d", i)),
			}); err != nil {
				failSeed(t, sc.Cfg.Seed, "produce: %v", err)
			}
		}
		if err := prod.Flush(); err != nil {
			failSeed(t, sc.Cfg.Seed, "flush: %v", err)
		}
		prod.Close()
	}
	produce(0, 150)

	acfg := archive.ArchiverConfig{
		Topic:          sc.Cfg.Topic,
		Name:           "crashy",
		SegmentRecords: 25,
		FlushInterval:  50 * time.Millisecond,
		PollWait:       50 * time.Millisecond,
	}
	a, err := sc.Stack.StartArchiver(acfg)
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "start archiver: %v", err)
	}
	// Let segments commit, then enter the crash window: offset checkpoints
	// stop while manifests keep committing — the widest divergence the
	// recovery path must close. More records arrive inside the window, so
	// the manifests run well ahead of the last checkpoint when the crash
	// lands.
	awaitArchived(t, sc, acfg, 100)
	a.FailCheckpoints()
	produce(150, 300)
	awaitArchived(t, sc, acfg, 300)
	a.Kill()

	// A restarted archiver resumes from the committed offset (stale, far
	// behind) but must dedupe against the manifests: the redelivered range
	// is dropped, only genuinely new records land. Producing a third
	// tranche proves it processed through the redelivery without
	// re-archiving any of it.
	if _, err := sc.Stack.StartArchiver(acfg); err != nil {
		failSeed(t, sc.Cfg.Seed, "restart archiver: %v", err)
	}
	produce(300, 310)
	const total = 310
	awaitArchived(t, sc, acfg, total)
	fs, err := sc.Stack.ArchiveFS()
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "archive fs: %v", err)
	}
	manifests, err := archive.ListManifests(fs, "/archive", sc.Cfg.Topic)
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "manifests: %v", err)
	}
	var records int64
	for _, m := range manifests {
		want := int64(0)
		for _, seg := range m.Segments {
			if seg.BaseOffset != want {
				failSeed(t, sc.Cfg.Seed, "partition %d segment starts at %d, want %d (gap or duplicate)",
					m.Partition, seg.BaseOffset, want)
			}
			if seg.Records != seg.LastOffset-seg.BaseOffset+1 {
				failSeed(t, sc.Cfg.Seed, "partition %d segment %s record count mismatch", m.Partition, seg.Path)
			}
			want = seg.LastOffset + 1
			records += seg.Records
		}
		if m.NextOffset != want {
			failSeed(t, sc.Cfg.Seed, "partition %d NextOffset %d, want %d", m.Partition, m.NextOffset, want)
		}
	}
	if records != total {
		failSeed(t, sc.Cfg.Seed, "archived %d records, want %d", records, total)
	}

	// Exactly-once backfill: two runs under one group deliver each
	// archived record exactly once to the target feed.
	if err := sc.Stack.CreateFeed("rewound", 1, 1); err != nil {
		failSeed(t, sc.Cfg.Seed, "create target: %v", err)
	}
	bcfg := archive.BackfillConfig{SourceTopic: sc.Cfg.Topic, TargetTopic: "rewound"}
	if _, err := sc.Stack.Backfill(bcfg); err != nil {
		failSeed(t, sc.Cfg.Seed, "backfill: %v", err)
	}
	again, err := sc.Stack.Backfill(bcfg)
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "backfill rerun: %v", err)
	}
	if again.Records != 0 {
		failSeed(t, sc.Cfg.Seed, "backfill rerun republished %d records (exactly-once broken)", again.Records)
	}
	scan, err := ScanFeed(sc.Stack.Client(), "rewound", 1, 30*time.Second)
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "scan target: %v", err)
	}
	for i := 0; i < total; i++ {
		v := fmt.Sprintf("v-%03d", i)
		if n := scan.Values[v]; n != 1 {
			failSeed(t, sc.Cfg.Seed, "backfilled record %q appears %d times, want exactly 1", v, n)
		}
	}
}

// awaitArchived polls until the archiver group's manifests hold at least
// want records.
func awaitArchived(t *testing.T, sc *Scenario, acfg archive.ArchiverConfig, want int) {
	t.Helper()
	fs, err := sc.Stack.ArchiveFS()
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "archive fs: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var total int64
		if manifests, err := archive.ListManifests(fs, "/archive", acfg.Topic); err == nil {
			for _, m := range manifests {
				total += m.Records()
			}
		}
		if total >= int64(want) {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	failSeed(t, sc.Cfg.Seed, "archive never reached %d records", want)
}

package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

// startEcho runs a frame echo server registered on the network as node
// "server", returning its address.
func startEcho(t *testing.T, n *Network) string {
	t.Helper()
	ln, err := n.Listen("server")("127.0.0.1", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					payload, err := wire.ReadFrame(c)
					if err != nil {
						return
					}
					if err := wire.WriteFrame(c, payload); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// dialNode dials through the network as the named node.
func dialNode(t *testing.T, n *Network, node, addr string) net.Conn {
	t.Helper()
	conn, err := n.Dialer(node)(addr, time.Second)
	if err != nil {
		t.Fatalf("dial %s->%s: %v", node, addr, err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// echo sends one frame and reads one echoed frame.
func echo(conn net.Conn, payload []byte) ([]byte, error) {
	if err := wire.WriteFrame(conn, payload); err != nil {
		return nil, err
	}
	return wire.ReadFrame(conn)
}

func TestPassThroughWithoutFaults(t *testing.T) {
	n := NewNetwork(1)
	addr := startEcho(t, n)
	conn := dialNode(t, n, "client", addr)
	for i := 0; i < 10; i++ {
		msg := bytes.Repeat([]byte{byte(i)}, 100+i)
		got, err := echo(conn, msg)
		if err != nil {
			t.Fatalf("echo %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("echo %d corrupted a clean link", i)
		}
	}
}

func TestDelayFault(t *testing.T) {
	n := NewNetwork(1)
	addr := startEcho(t, n)
	conn := dialNode(t, n, "client", addr)
	if _, err := echo(conn, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	n.SetLinkFaults("client", "server", Faults{Delay: 50 * time.Millisecond})
	start := time.Now()
	if _, err := echo(conn, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("round trip %v beat the injected 50ms delay", d)
	}
}

func TestDuplicateFault(t *testing.T) {
	n := NewNetwork(1)
	addr := startEcho(t, n)
	conn := dialNode(t, n, "client", addr)
	// Every request frame is duplicated: the server echoes each copy, so
	// one send yields two responses.
	n.SetLinkFaults("client", "server", Faults{DuplicateRate: 1})
	if err := wire.WriteFrame(conn, []byte("dup")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatalf("read copy %d: %v", i, err)
		}
		if string(got) != "dup" {
			t.Fatalf("copy %d = %q", i, got)
		}
	}
}

func TestDropFaultResetsConnection(t *testing.T) {
	n := NewNetwork(1)
	addr := startEcho(t, n)
	conn := dialNode(t, n, "client", addr)
	n.SetLinkFaults("client", "server", Faults{DropRate: 1})
	err := wire.WriteFrame(conn, []byte("lost"))
	if err == nil {
		// The drop may surface on the read side instead, depending on
		// which write call carried the frame boundary.
		_, err = wire.ReadFrame(conn)
	}
	if err == nil {
		t.Fatal("dropped frame produced a response")
	}
	// The connection is reset, not wedged: subsequent use errors fast.
	if _, err := echo(conn, []byte("after")); err == nil {
		t.Fatal("connection survived a dropped frame")
	}
}

func TestCorruptFaultIsDetectable(t *testing.T) {
	n := NewNetwork(7)
	addr := startEcho(t, n)
	conn := dialNode(t, n, "client", addr)
	n.SetLinkFaults("client", "server", Faults{CorruptRate: 1})
	msg := bytes.Repeat([]byte{0x42}, 64)
	got, err := echo(conn, msg)
	if err != nil {
		// A corrupt length prefix is also a legitimate detection path.
		return
	}
	if bytes.Equal(got, msg) {
		t.Fatal("corrupt fault did not alter the frame")
	}
}

func TestSeverBlocksDialsAndResetsConns(t *testing.T) {
	n := NewNetwork(1)
	addr := startEcho(t, n)
	conn := dialNode(t, n, "client", addr)
	if _, err := echo(conn, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	n.Sever("client", "server")
	if _, err := n.Dialer("client")(addr, time.Second); err == nil {
		t.Fatal("dial across severed link succeeded")
	}
	if _, err := echo(conn, []byte("post")); err == nil {
		t.Fatal("existing connection survived the sever")
	}
	// Heal restores dialing.
	n.Unsever("client", "server")
	conn2 := dialNode(t, n, "client", addr)
	if _, err := echo(conn2, []byte("healed")); err != nil {
		t.Fatalf("healed link: %v", err)
	}
}

func TestAsymmetricSever(t *testing.T) {
	n := NewNetwork(1)
	addrA := startEcho(t, n) // node "server"
	// Second listener owned by another node.
	lnB, err := n.Listen("b")("127.0.0.1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lnB.Close()

	n.PartitionOneWay([]string{"b"}, []string{"server"})
	// b -> server dials fail...
	if _, err := n.Dialer("b")(addrA, time.Second); err == nil {
		t.Fatal("b->server dial crossed a one-way partition")
	}
	// ...while server -> b dials still connect.
	accepted := make(chan struct{})
	go func() {
		if c, err := lnB.Accept(); err == nil {
			c.Close()
			close(accepted)
		}
	}()
	conn, err := n.Dialer("server")(lnB.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("server->b dial blocked by one-way partition: %v", err)
	}
	conn.Close()
	select {
	case <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("server->b connection never accepted")
	}
}

func TestIsolateAndHealNode(t *testing.T) {
	n := NewNetwork(1)
	addr := startEcho(t, n)
	conn := dialNode(t, n, "client", addr)
	n.Isolate("server")
	if _, err := echo(conn, []byte("x")); err == nil {
		t.Fatal("connection to isolated node survived")
	}
	if _, err := n.Dialer("client")(addr, time.Second); err == nil {
		t.Fatal("dial to isolated node succeeded")
	}
	n.HealNode("server")
	conn2 := dialNode(t, n, "client", addr)
	if _, err := echo(conn2, []byte("back")); err != nil {
		t.Fatalf("healed node unreachable: %v", err)
	}
}

func TestSeededDrawsAreDeterministic(t *testing.T) {
	l := link{from: "client", to: "server"}
	f := Faults{DropRate: 0.3, DuplicateRate: 0.2, CorruptRate: 0.1}
	draw := func(seed int64) []frameAction {
		n := NewNetwork(seed)
		out := make([]frameAction, 200)
		for i := range out {
			out[i] = n.draw(l, f)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestUnframedTrafficFallsBackToRaw(t *testing.T) {
	// A stream that does not follow the length-prefix protocol must still
	// flow (the receiver, not the injector, owns rejecting it).
	n := NewNetwork(1)
	ln, err := n.Listen("server")("127.0.0.1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf, _ := io.ReadAll(c)
		got <- buf
	}()
	conn := dialNode(t, n, "client", ln.Addr().String())
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3} // bogus huge length prefix
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	select {
	case buf := <-got:
		if !bytes.Equal(buf, raw) {
			t.Fatalf("raw bytes mangled: % x", buf)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("raw traffic never arrived")
	}
}

func TestFrameTooLargeSentinel(t *testing.T) {
	// The wire layer's framing-violation sentinel is what receivers use to
	// classify injected corruption; make sure it round-trips.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := wire.ReadFrame(&buf); !errors.Is(err, wire.ErrFrameTooLarge) {
		t.Fatalf("oversized frame error = %v, want ErrFrameTooLarge", err)
	}
}

package chaos

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/storage/log"
)

// TestChaosSmokeGroupCommitCrash kills the partition leader while acks=all
// producers run against group-commit durability — so the kill lands inside
// (or adjacent to) an open sync window, the worst case for deferred acks.
// Invariants: every record acked before the fault survives failover exactly
// once, offsets stay contiguous, and after the dust settles the surviving
// brokers' partition logs are byte-identical (replication and group commit
// agree on the committed prefix down to the encoding).
func TestChaosSmokeGroupCommitCrash(t *testing.T) {
	sc, err := StartScenario(ScenarioConfig{
		Name: "group-commit-crash",
		Seed: *chaosSeed,
		Durability: log.Durability{
			Policy:      log.SyncGroup,
			GroupWindow: 4 * time.Millisecond,
		},
	})
	if err != nil {
		failSeed(t, *chaosSeed, "start: %v", err)
	}
	defer sc.Close()
	sc.StartProducers()
	if err := sc.AwaitAcked(150, 20*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "%v", err)
	}
	sc.MarkPreFault()
	// With a 4ms window and a ~1ms produce pause, the leader is nearly
	// always holding un-fsynced, un-acked batches when the kill lands.
	old, err := sc.KillLeader(0)
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "kill leader: %v", err)
	}
	if _, err := sc.AwaitLeaderChange(0, old, 20*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "%v", err)
	}
	// Deferred acks must keep resolving under the new leader.
	if err := sc.AwaitAcked(sc.Ledger.Len()+150, 30*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "post-failover progress: %v", err)
	}
	mustFinish(t, sc)

	// Byte-identity of the surviving replicas: replication copies sealed
	// batches verbatim and reconciliation truncates divergent tails, so once
	// follower fetching quiesces the survivors' logs must match bytewise.
	// The killed broker is excluded — its unsynced tail is legitimately gone.
	survivors := make([]int32, 0, sc.Cfg.Brokers)
	for id := int32(1); id <= int32(sc.Cfg.Brokers); id++ { // broker ids are 1-based
		if id != old {
			survivors = append(survivors, id)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		logs := make([][]byte, len(survivors))
		for i, id := range survivors {
			logs[i] = readPartitionLog(t, sc, id)
		}
		identical := true
		for i := 1; i < len(logs); i++ {
			if !bytes.Equal(logs[0], logs[i]) {
				identical = false
				break
			}
		}
		if identical && len(logs[0]) > 0 {
			break
		}
		if time.Now().After(deadline) {
			sizes := make([]string, len(survivors))
			for i, id := range survivors {
				sizes[i] = fmt.Sprintf("broker-%d=%dB", id, len(logs[i]))
			}
			failSeed(t, sc.Cfg.Seed, "surviving logs never converged to byte-identity: %s",
				strings.Join(sizes, " "))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// readPartitionLog concatenates a broker's segment files for the scenario
// partition in base-offset order (missing dir reads as empty: the broker may
// not have created the replica yet).
func readPartitionLog(t *testing.T, sc *Scenario, broker int32) []byte {
	t.Helper()
	dir := filepath.Join(sc.Stack.DataDir(), fmt.Sprintf("broker-%d", broker),
		fmt.Sprintf("%s-0", sc.Cfg.Topic))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".log") {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	var out []byte
	for _, name := range segs {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		out = append(out, b...)
	}
	return out
}

package chaos

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tier"
	"repro/internal/wire"
)

// TestChaosSmokeTierCrash kills a tiered partition's leader in the exact
// upload→manifest-commit window: the leader has renamed a cold segment into
// place on the DFS but dies before the manifest commit (the hook keeps
// failing offloads until the kill lands, so the window cannot close early).
// The hand-over leader must recover tier state from the manifest, sweep the
// orphan, and re-offload — the scenario asserts (1) no acked-record loss
// across the full tiered log (ScanFeed reads from the tiered-earliest
// through the ordinary fetch API) and (2) no duplicate or overlapping
// tiered segments after recovery.
func TestChaosSmokeTierCrash(t *testing.T) {
	var failUploads atomic.Bool
	failUploads.Store(true)
	windowReached := make(chan struct{})
	var once sync.Once

	sc, err := StartScenario(ScenarioConfig{
		Name:              "tier-crash",
		Seed:              *chaosSeed,
		Brokers:           3,
		Replication:       3,
		TierInterval:      25 * time.Millisecond,
		RetentionInterval: 25 * time.Millisecond,
		Spec: &wire.TopicSpec{
			SegmentBytes:      4 << 10,
			Tiered:            true,
			HotRetentionMs:    -1,
			HotRetentionBytes: 8 << 10,
			RetentionMs:       -1,
			RetentionBytes:    -1,
		},
		TierUploadHook: func(topic string, partition int32, path string) error {
			if !failUploads.Load() {
				return nil
			}
			once.Do(func() { close(windowReached) })
			return errInjectedTierCrash
		},
	})
	if err != nil {
		failSeed(t, *chaosSeed, "start: %v", err)
	}
	defer sc.Close()

	sc.StartProducers()
	// Enough acked volume to seal several 4 KiB segments and trigger the
	// first offload attempt (each record is ~40 payload bytes).
	if err := sc.AwaitAcked(300, 20*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "%v", err)
	}
	select {
	case <-windowReached:
	case <-time.After(20 * time.Second):
		failSeed(t, sc.Cfg.Seed, "offloader never reached the upload window")
	}
	sc.MarkPreFault()
	old, err := sc.KillLeader(0)
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "kill leader: %v", err)
	}
	// Only now may offloads succeed: the dead leader never commits, the
	// new one recovers and re-offloads.
	failUploads.Store(false)
	if _, err := sc.AwaitLeaderChange(0, old, 20*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "%v", err)
	}
	// Keep the workload running through recovery, then let the new leader
	// offload for a few ticks before the final scan.
	if err := sc.AwaitAcked(sc.Ledger.Len()+200, 30*time.Second); err != nil {
		failSeed(t, sc.Cfg.Seed, "%v", err)
	}
	awaitTierRecovery(t, sc)
	mustFinish(t, sc)

	// No duplicate tiered segments: the manifest must be gapless with
	// non-overlapping ranges, and every committed file on the DFS must be
	// referenced by it (the orphan from the crash window was swept).
	man, err := tier.LoadManifest(sc.Stack.TierFS(), "/tier", sc.Cfg.Topic, 0)
	if err != nil {
		failSeed(t, sc.Cfg.Seed, "load tier manifest: %v", err)
	}
	if len(man.Segments) == 0 {
		failSeed(t, sc.Cfg.Seed, "new leader never offloaded after recovery")
	}
	want := man.StartOffset
	referenced := make(map[string]bool, len(man.Segments))
	for _, s := range man.Segments {
		if s.BaseOffset != want {
			failSeed(t, sc.Cfg.Seed, "tiered segment %s starts at %d, want %d (gap or duplicate)",
				s.Path, s.BaseOffset, want)
		}
		want = s.LastOffset + 1
		referenced[s.Path] = true
	}
	if man.NextOffset != want {
		failSeed(t, sc.Cfg.Seed, "manifest NextOffset %d, want %d", man.NextOffset, want)
	}
	for _, info := range sc.Stack.TierFS().List(tier.SegmentsPrefix("/tier", sc.Cfg.Topic)) {
		if strings.HasSuffix(info.Path, ".tmp") {
			failSeed(t, sc.Cfg.Seed, "tmp upload survived recovery: %s", info.Path)
		}
		if strings.HasSuffix(info.Path, ".seg") && !referenced[info.Path] {
			failSeed(t, sc.Cfg.Seed, "orphan tiered segment survived recovery: %s", info.Path)
		}
	}
}

// awaitTierRecovery blocks until the hand-over leader has offloaded past
// the crash point (cold segments exist and the local start advanced), so
// the final scan genuinely crosses the cold→hot boundary.
func awaitTierRecovery(t *testing.T, sc *Scenario) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		sts, err := sc.Stack.TierStatus(sc.Cfg.Topic)
		if err == nil && len(sts) == 1 && sts[0].TieredSegments > 0 && sts[0].LocalStartOffset > 0 {
			return
		}
		if time.Now().After(deadline) {
			failSeed(t, sc.Cfg.Seed, "tier never recovered after failover: %+v (err %v)", sts, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// errInjectedTierCrash marks offloads suppressed while the crash window is
// held open.
var errInjectedTierCrash = errInjected{}

type errInjected struct{}

func (errInjected) Error() string { return "chaos: injected tier upload crash" }

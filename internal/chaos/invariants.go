package chaos

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/coord"
	"repro/internal/wire"
)

// Violation is one invariant breach found by a checker. Scenarios pass when
// the violation list is empty.
type Violation struct {
	// Invariant names the guarantee ("acked-loss", "hw-monotonic",
	// "leader-epoch", "offset-contiguity", "backfill-exactly-once",
	// "acked-dup").
	Invariant string
	// Detail describes the breach.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// violationf renders one violation.
func violationf(invariant, format string, args ...any) Violation {
	return Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
}

// ------------------------------------------------------------------ ledger

// Ledger records every value the workload got acknowledged, in ack order,
// with named marks segmenting phases (before/after a fault). The checkers
// compare it against what a full scan of the feed actually holds:
//
//   - no acked-record loss: every acked value is present;
//   - no acked-record duplication, unconditionally: idempotent producers
//     stamp every batch with (id, epoch, sequence) and brokers dedup
//     retries, so a produce retried across a failover lands exactly once
//     even when the original ack died with the old leader. (Before
//     producer idempotence this only held for values acked before the
//     first fault mark — see LegacyDupWindow.)
type Ledger struct {
	mu    sync.Mutex
	acked []string
	marks map[string]int
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{marks: make(map[string]int)} }

// Acked records one acknowledged value.
func (l *Ledger) Acked(value string) {
	l.mu.Lock()
	l.acked = append(l.acked, value)
	l.mu.Unlock()
}

// Mark names the current ack watermark (e.g. "pre-fault").
func (l *Ledger) Mark(name string) {
	l.mu.Lock()
	l.marks[name] = len(l.acked)
	l.mu.Unlock()
}

// All returns every acked value.
func (l *Ledger) All() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.acked...)
}

// Before returns the values acked before the named mark (nil when the mark
// was never set).
func (l *Ledger) Before(name string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	n, ok := l.marks[name]
	if !ok {
		return nil
	}
	return append([]string(nil), l.acked[:n]...)
}

// Len returns the acked count.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.acked)
}

// ------------------------------------------------------------- HW monitor

// HWMonitor samples each partition's committed end offset (the leader's
// high watermark, via ListOffsets latest) and records every regression: the
// high watermark must be monotonic per partition across failovers, because
// it only ever covers fully replicated data (§4.3). Query errors during a
// failover window are expected and skipped.
type HWMonitor struct {
	c          *client.Client
	topic      string
	partitions int32

	mu         sync.Mutex
	last       map[int32]int64
	violations []Violation

	stop chan struct{}
	done chan struct{}
}

// StartHWMonitor begins sampling at the given interval.
func StartHWMonitor(c *client.Client, topic string, partitions int32, interval time.Duration) *HWMonitor {
	m := &HWMonitor{
		c:          c,
		topic:      topic,
		partitions: partitions,
		last:       make(map[int32]int64),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go m.run(interval)
	return m
}

func (m *HWMonitor) run(interval time.Duration) {
	defer close(m.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			for p := int32(0); p < m.partitions; p++ {
				hw, err := m.c.ListOffset(m.topic, p, wire.TimestampLatest)
				if err != nil {
					continue // leaderless window: nothing to observe
				}
				m.observe(p, hw)
			}
		}
	}
}

// observe folds one sample in.
func (m *HWMonitor) observe(p int32, hw int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if prev, ok := m.last[p]; ok && hw < prev {
		m.violations = append(m.violations, violationf("hw-monotonic",
			"%s/%d high watermark regressed %d -> %d", m.topic, p, prev, hw))
	}
	if hw > m.last[p] {
		m.last[p] = hw
	}
}

// Stop halts sampling and returns the violations found.
func (m *HWMonitor) Stop() []Violation {
	close(m.stop)
	<-m.done
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Violation(nil), m.violations...)
}

// ---------------------------------------------------------- epoch watcher

// EpochWatcher subscribes to the coordination store's partition-state
// events and asserts the §4.3 hand-over safety property: within one epoch a
// partition has at most one leader — the controller bumps the epoch on every
// leader change, so two brokers may never both hold a (partition, epoch)
// claim. The watch sees every committed transition, so this checker has no
// sampling gaps.
type EpochWatcher struct {
	topic string

	mu         sync.Mutex
	leaders    map[string]int32 // "partition/epoch" -> leader
	lastEpoch  map[int32]int32
	violations []Violation

	cancel func()
	done   chan struct{}
}

// WatchEpochs starts watching a topic's partition state in the store.
func WatchEpochs(store *coord.Store, topic string) *EpochWatcher {
	events, cancel := store.Watch(cluster.StatePrefix + topic + "/")
	w := &EpochWatcher{
		topic:     topic,
		leaders:   make(map[string]int32),
		lastEpoch: make(map[int32]int32),
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	go w.run(events)
	return w
}

func (w *EpochWatcher) run(events <-chan coord.Event) {
	defer close(w.done)
	for ev := range events {
		if ev.Type == coord.EventDeleted {
			continue
		}
		_, partition, ok := cluster.ParseStatePath(ev.Path)
		if !ok {
			continue
		}
		var st cluster.PartitionState
		if json.Unmarshal(ev.Value, &st) != nil {
			continue
		}
		w.observe(partition, st)
	}
}

// observe folds one committed state transition in.
func (w *EpochWatcher) observe(partition int32, st cluster.PartitionState) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if st.Epoch < w.lastEpoch[partition] {
		w.violations = append(w.violations, violationf("leader-epoch",
			"%s/%d epoch regressed %d -> %d", w.topic, partition, w.lastEpoch[partition], st.Epoch))
	}
	w.lastEpoch[partition] = st.Epoch
	if st.Leader < 0 {
		return // offline: no leader claim in this state
	}
	key := fmt.Sprintf("%d/%d", partition, st.Epoch)
	if prev, ok := w.leaders[key]; ok && prev != st.Leader {
		w.violations = append(w.violations, violationf("leader-epoch",
			"%s/%d epoch %d claimed by two leaders: %d and %d",
			w.topic, partition, st.Epoch, prev, st.Leader))
	}
	w.leaders[key] = st.Leader
}

// Stop cancels the watch and returns the violations found.
func (w *EpochWatcher) Stop() []Violation {
	w.cancel()
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Violation(nil), w.violations...)
}

// -------------------------------------------------------------- feed scan

// FeedScan is a full committed read of one feed, the ground truth the
// ledger is checked against.
type FeedScan struct {
	// Values counts occurrences of each consumed value across partitions.
	Values map[string]int
	// Offsets holds each partition's consumed offsets in consumption order.
	Offsets map[int32][]int64
	// Start holds each partition's log start offset at scan time.
	Start map[int32]int64
}

// ScanFeed reads every partition of a feed from its log start to its
// current committed end, retrying through transient leaderless windows
// until the deadline.
func ScanFeed(c *client.Client, topic string, partitions int32, timeout time.Duration) (*FeedScan, error) {
	scan := &FeedScan{
		Values:  make(map[string]int),
		Offsets: make(map[int32][]int64),
		Start:   make(map[int32]int64),
	}
	deadline := time.Now().Add(timeout)
	for p := int32(0); p < partitions; p++ {
		var start, end int64
		var err error
		for {
			start, err = c.ListOffset(topic, p, wire.TimestampEarliest)
			if err == nil {
				end, err = c.ListOffset(topic, p, wire.TimestampLatest)
			}
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("chaos: scan %s/%d: %w", topic, p, err)
			}
			time.Sleep(25 * time.Millisecond)
		}
		scan.Start[p] = start
		cons := client.NewConsumer(c, client.ConsumerConfig{})
		if err := cons.Assign(topic, p, start); err != nil {
			cons.Close()
			return nil, err
		}
		pos := start
		for pos < end {
			msgs, err := cons.Poll(250 * time.Millisecond)
			if err != nil {
				if time.Now().After(deadline) {
					cons.Close()
					return nil, fmt.Errorf("chaos: scan %s/%d stalled at %d/%d: %w", topic, p, pos, end, err)
				}
				continue
			}
			for _, m := range msgs {
				scan.Values[string(m.Value)]++
				scan.Offsets[p] = append(scan.Offsets[p], m.Offset)
			}
			if n := cons.Position(topic, p); n > pos {
				pos = n
			}
			if time.Now().After(deadline) {
				cons.Close()
				return nil, fmt.Errorf("chaos: scan %s/%d stalled at %d/%d", topic, p, pos, end)
			}
		}
		cons.Close()
	}
	return scan, nil
}

// AckedSurvivalOption adjusts CheckAckedSurvival.
type AckedSurvivalOption func(*ackedSurvivalConfig)

type ackedSurvivalConfig struct{ legacyDupMark string }

// LegacyDupWindow restores the pre-idempotence carve-out: duplicates are
// only flagged for values acked before the named mark, and acks in flight
// during a fault are tolerated as at-least-once. Only for workloads that
// deliberately disable producer idempotence — everything else gets the
// unconditional exactly-once check.
func LegacyDupWindow(mark string) AckedSurvivalOption {
	return func(c *ackedSurvivalConfig) { c.legacyDupMark = mark }
}

// CheckAckedSurvival asserts that every ledger value is in the scan
// (no acked-record loss) and appears exactly once (no acked-record
// duplication). The dup check is unconditional: idempotent producers make
// failover-window retries safe, so a value acked at any point — including
// mid-fault — must land exactly once. LegacyDupWindow narrows the dup check
// for non-idempotent workloads.
func CheckAckedSurvival(scan *FeedScan, ledger *Ledger, opts ...AckedSurvivalOption) []Violation {
	var cfg ackedSurvivalConfig
	for _, o := range opts {
		o(&cfg)
	}
	var out []Violation
	for _, v := range ledger.All() {
		if scan.Values[v] == 0 {
			out = append(out, violationf("acked-loss", "acked record %q missing from feed", v))
		}
	}
	dupScope := ledger.All()
	if cfg.legacyDupMark != "" {
		dupScope = ledger.Before(cfg.legacyDupMark)
	}
	for _, v := range dupScope {
		if n := scan.Values[v]; n > 1 {
			out = append(out, violationf("acked-dup",
				"acked record %q appears %d times in the feed", v, n))
		}
	}
	return out
}

// CheckOffsetContiguity asserts each partition's consumed offsets form a
// gapless, duplicate-free run from its log start — consumers never see an
// offset twice or skip a committed one.
func CheckOffsetContiguity(scan *FeedScan) []Violation {
	var out []Violation
	parts := make([]int32, 0, len(scan.Offsets))
	for p := range scan.Offsets {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	for _, p := range parts {
		want := scan.Start[p]
		for _, off := range scan.Offsets[p] {
			if off != want {
				out = append(out, violationf("offset-contiguity",
					"partition %d consumed offset %d, want %d", p, off, want))
				want = off // resynchronise to report each break once
			}
			want++
		}
	}
	return out
}

package chaos

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/storage/log"
	"repro/internal/wire"
)

// ScenarioConfig sizes one fault-injection scenario.
type ScenarioConfig struct {
	// Name labels logs and violations.
	Name string
	// Seed drives the fault schedule; print it on failure so the run is
	// reproducible (tests take it from -chaos.seed).
	Seed int64
	// Brokers / Topic / Partitions / Replication shape the stack under
	// test (defaults: 3 brokers, "chaos-feed", 1 partition, rf=brokers).
	Brokers     int
	Topic       string
	Partitions  int32
	Replication int16
	// Producers is how many concurrent acks=all producers run (default 2).
	Producers int
	// ProducePause paces each producer between sends (default 1ms).
	ProducePause time.Duration
	// SessionTimeout bounds failover detection (default 750ms).
	SessionTimeout time.Duration
	// ReplicaMaxLag is the ISR shrink threshold (default 1s).
	ReplicaMaxLag time.Duration
	// Spec, when non-nil, overrides how the scenario feed is created
	// (tiered topics, custom segment sizes); Name/partitions/replication
	// are forced to the scenario's values.
	Spec *wire.TopicSpec
	// TierInterval / RetentionInterval drive the brokers' tiering and
	// retention cadence (0 leaves each at the broker default, which for
	// retention means the housekeeping loop barely runs inside a
	// scenario's lifetime).
	TierInterval      time.Duration
	RetentionInterval time.Duration
	// TierUploadHook is forwarded to the stack: it runs on a partition
	// leader between cold-segment upload and manifest commit — the crash
	// window the tier-crash scenario kills the leader in.
	TierUploadHook func(topic string, partition int32, path string) error
	// Durability is forwarded to every broker's partition logs; the
	// group-commit crash scenario kills a leader mid-sync-window under it.
	Durability log.Durability
	// OpsAddr is forwarded to every broker: non-empty (use "127.0.0.1:0")
	// gives each one an ops HTTP server so scenarios can scrape /metrics
	// and probe /healthz across faults.
	OpsAddr string
	// Logger receives stack events; nil keeps only errors.
	Logger *slog.Logger
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Name == "" {
		c.Name = "scenario"
	}
	if c.Brokers == 0 {
		c.Brokers = 3
	}
	if c.Topic == "" {
		c.Topic = "chaos-feed"
	}
	if c.Partitions == 0 {
		c.Partitions = 1
	}
	if c.Replication == 0 {
		c.Replication = int16(c.Brokers)
	}
	if c.Producers == 0 {
		c.Producers = 2
	}
	if c.ProducePause == 0 {
		c.ProducePause = time.Millisecond
	}
	if c.SessionTimeout == 0 {
		c.SessionTimeout = 750 * time.Millisecond
	}
	if c.ReplicaMaxLag == 0 {
		c.ReplicaMaxLag = time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
	}
	return c
}

// PreFaultMark is the ledger mark scenarios set before their first fault.
// It segments the ledger for diagnostics (how much was acked before the
// schedule started) and feeds LegacyDupWindow for workloads that disable
// producer idempotence; the default acked-dup check no longer needs it —
// exactly-once holds across the fault window too.
const PreFaultMark = "pre-fault"

// Scenario drives a live core.Stack through a scripted fault schedule while
// invariant monitors watch continuously. Typical shape:
//
//	sc, _ := StartScenario(cfg)
//	defer sc.Close()
//	sc.StartProducers()
//	sc.AwaitAcked(200, 10*time.Second)
//	sc.MarkPreFault()                 // exactly-once boundary
//	sc.KillLeader(0)                  // the fault under test
//	sc.AwaitAcked(sc.Ledger.Len()+200, 30*time.Second)
//	violations, err := sc.Finish()    // stop, scan, check invariants
type Scenario struct {
	Cfg    ScenarioConfig
	Net    *Network
	Stack  *core.Stack
	Ledger *Ledger

	observer *client.Client    // clean-link client for monitors and scans
	obsMet   *metrics.Registry // the observer's private registry
	prodMet  *metrics.Registry // shared by the scenario's own producers only
	hw       *HWMonitor
	ew       *EpochWatcher

	stopProducers chan struct{}
	wg            sync.WaitGroup
	produceErrs   atomic.Int64

	stopOnce      sync.Once
	monOnce       sync.Once
	monViolations []Violation
	finished      bool
}

// StartScenario boots a chaos-wired stack with the scenario's feed created
// and the invariant monitors running.
func StartScenario(cfg ScenarioConfig) (*Scenario, error) {
	cfg = cfg.withDefaults()
	net := NewNetwork(cfg.Seed)
	stack, err := core.Start(core.Config{
		Brokers:           cfg.Brokers,
		SessionTimeout:    cfg.SessionTimeout,
		ReplicaMaxLag:     cfg.ReplicaMaxLag,
		TierInterval:      cfg.TierInterval,
		RetentionInterval: cfg.RetentionInterval,
		TierUploadHook:    cfg.TierUploadHook,
		Durability:        cfg.Durability,
		OpsAddr:           cfg.OpsAddr,
		Chaos:             net,
		Logger:            cfg.Logger,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: %s: %w", cfg.Name, err)
	}
	spec := wire.TopicSpec{}
	if cfg.Spec != nil {
		spec = *cfg.Spec
	}
	spec.Name = cfg.Topic
	spec.NumPartitions = cfg.Partitions
	spec.ReplicationFactor = cfg.Replication
	if err := stack.CreateTopic(spec); err != nil {
		stack.Shutdown()
		return nil, fmt.Errorf("chaos: %s: create feed: %w", cfg.Name, err)
	}
	// The monitors observe through their own node on the network, so
	// scenarios that fault ClientNode links never corrupt a measurement:
	// an invariant violation is always the stack's fault, not the probe's.
	// The observer gets a private registry for the same reason: its
	// consume counters must reflect only the final scan, and the stack
	// registry's acked counter only the scenario producers.
	obsMet := metrics.NewRegistry()
	observer, err := client.New(client.Config{
		Bootstrap:    stack.Addrs(),
		ClientID:     cfg.Name + "-observer",
		MaxRetries:   40,
		RetryBackoff: 25 * time.Millisecond,
		MetadataTTL:  time.Second,
		Dialer:       net.Dialer(ObserverNode),
		Metrics:      obsMet,
	})
	if err != nil {
		stack.Shutdown()
		return nil, fmt.Errorf("chaos: %s: observer: %w", cfg.Name, err)
	}
	s := &Scenario{
		Cfg:           cfg,
		Net:           net,
		Stack:         stack,
		Ledger:        NewLedger(),
		observer:      observer,
		obsMet:        obsMet,
		prodMet:       metrics.NewRegistry(),
		stopProducers: make(chan struct{}),
	}
	s.hw = StartHWMonitor(observer, cfg.Topic, cfg.Partitions, 10*time.Millisecond)
	s.ew = WatchEpochs(stack.Coord(), cfg.Topic)
	return s, nil
}

// StartProducers launches the acks=all produce workload: each producer
// sends uniquely-valued records in a tight loop and records every
// acknowledgement in the ledger.
func (s *Scenario) StartProducers() {
	for i := 0; i < s.Cfg.Producers; i++ {
		s.wg.Add(1)
		go s.produceLoop(i)
	}
}

func (s *Scenario) produceLoop(id int) {
	defer s.wg.Done()
	// Built directly rather than via Stack.NewClient so the workload
	// records into prodMet, a registry only these producers share: the
	// counter-conservation check needs acked-counter == ledger even when
	// a scenario runs auxiliary clients (quota aggressors, probes).
	cli, err := client.New(client.Config{
		Bootstrap:    s.Stack.Addrs(),
		ClientID:     fmt.Sprintf("%s-producer-%d", s.Cfg.Name, id),
		MaxRetries:   40,
		RetryBackoff: 25 * time.Millisecond,
		MetadataTTL:  time.Second,
		Dialer:       s.Net.ClientDial(),
		Metrics:      s.prodMet,
	})
	if err != nil {
		s.produceErrs.Add(1)
		return
	}
	defer cli.Close()
	p := client.NewProducer(cli, client.ProducerConfig{Acks: client.AcksAll})
	defer p.Close()
	for seq := 0; ; seq++ {
		select {
		case <-s.stopProducers:
			return
		default:
		}
		value := fmt.Sprintf("%s/p%d/%06d", s.Cfg.Name, id, seq)
		// Key = value routes deterministically and spreads partitions.
		if _, err := p.SendSync(client.Message{
			Topic: s.Cfg.Topic,
			Key:   []byte(value),
			Value: []byte(value),
		}); err == nil {
			s.Ledger.Acked(value)
		} else {
			s.produceErrs.Add(1)
		}
		if s.Cfg.ProducePause > 0 {
			time.Sleep(s.Cfg.ProducePause)
		}
	}
}

// MarkPreFault sets the exactly-once boundary: call it right before the
// first fault.
func (s *Scenario) MarkPreFault() { s.Ledger.Mark(PreFaultMark) }

// AwaitAcked blocks until the ledger holds at least n acks (the workload is
// demonstrably making progress) or the timeout passes.
func (s *Scenario) AwaitAcked(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for s.Ledger.Len() < n {
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: %s: %d/%d records acked before timeout", s.Cfg.Name, s.Ledger.Len(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// Leader returns a partition's current leader from the committed state.
func (s *Scenario) Leader(partition int32) (int32, error) {
	st, err := s.Stack.PartitionState(s.Cfg.Topic, partition)
	if err != nil {
		return -1, err
	}
	return st.Leader, nil
}

// KillLeader crashes the current leader of a partition (no graceful
// hand-off; the controller must detect the expiry), returning its id.
func (s *Scenario) KillLeader(partition int32) (int32, error) {
	leader, err := s.Leader(partition)
	if err != nil {
		return -1, err
	}
	if leader < 0 {
		return -1, errors.New("chaos: partition has no leader to kill")
	}
	if !s.Stack.KillBroker(leader) {
		return -1, fmt.Errorf("chaos: kill broker %d failed", leader)
	}
	return leader, nil
}

// KillController crashes the broker holding the controller seat, returning
// its id — the §4.3 hand-over must survive losing its own coordinator.
func (s *Scenario) KillController() (int32, error) {
	id := s.Stack.ControllerID()
	if id < 0 {
		return -1, errors.New("chaos: no controller elected")
	}
	if !s.Stack.KillBroker(id) {
		return -1, fmt.Errorf("chaos: kill controller %d failed", id)
	}
	return id, nil
}

// PartitionFollower severs one in-sync follower of a partition from the
// rest of the cluster (and the clients), returning its id. Past
// ReplicaMaxLag the leader must shrink the ISR so acks=all keeps making
// progress without it.
func (s *Scenario) PartitionFollower(partition int32) (int32, error) {
	st, err := s.Stack.PartitionState(s.Cfg.Topic, partition)
	if err != nil {
		return -1, err
	}
	for _, id := range st.ISR {
		if id != st.Leader {
			s.Stack.IsolateBroker(id)
			return id, nil
		}
	}
	return -1, errors.New("chaos: no follower in ISR to partition")
}

// AwaitLeaderChange blocks until the partition has a live leader different
// from old.
func (s *Scenario) AwaitLeaderChange(partition int32, old int32, timeout time.Duration) (int32, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := s.Stack.PartitionState(s.Cfg.Topic, partition)
		if err == nil && st.Leader >= 0 && st.Leader != old {
			return st.Leader, nil
		}
		if time.Now().After(deadline) {
			return -1, fmt.Errorf("chaos: leadership never moved off %d", old)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// AwaitISRShrink blocks until the broker leaves the partition's ISR.
func (s *Scenario) AwaitISRShrink(partition int32, follower int32, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		st, err := s.Stack.PartitionState(s.Cfg.Topic, partition)
		if err == nil && !st.InISR(follower) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: broker %d never left the ISR", follower)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ProduceErrors returns how many sends failed (they are allowed — failed
// sends carry no durability promise; the invariants police acked ones).
func (s *Scenario) ProduceErrors() int64 { return s.produceErrs.Load() }

// stopWorkload halts the producers and waits for them.
func (s *Scenario) stopWorkload() {
	s.stopOnce.Do(func() { close(s.stopProducers) })
	s.wg.Wait()
}

// stopMonitors halts the continuous checkers once, caching their findings.
func (s *Scenario) stopMonitors() []Violation {
	s.monOnce.Do(func() {
		s.monViolations = append(s.hw.Stop(), s.ew.Stop()...)
	})
	return s.monViolations
}

// Finish stops the workload, waits for the cluster to serve produces again,
// stops the monitors, scans the feed and returns every invariant violation.
// The scenario stays open (Close shuts the stack down) so callers can
// inspect state after a failure.
func (s *Scenario) Finish() ([]Violation, error) {
	if s.finished {
		return nil, errors.New("chaos: scenario already finished")
	}
	s.finished = true
	s.stopWorkload()

	// The cluster must come back: a probe produce succeeding proves a
	// leader is elected and serving before the final scan. The probe is
	// built directly (not via Stack.NewClient) so its acks stay out of
	// the stack registry — the counter-conservation check below needs the
	// acked counter to equal the ledger exactly.
	probe, err := client.New(client.Config{
		Bootstrap:    s.Stack.Addrs(),
		ClientID:     s.Cfg.Name + "-probe",
		MaxRetries:   40,
		RetryBackoff: 25 * time.Millisecond,
		MetadataTTL:  time.Second,
		Dialer:       s.Net.ClientDial(),
	})
	if err != nil {
		return nil, err
	}
	defer probe.Close()
	pp := client.NewProducer(probe, client.ProducerConfig{Acks: client.AcksAll})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := pp.SendSync(client.Message{
			Topic: s.Cfg.Topic, Key: []byte("probe"), Value: []byte("probe"),
		}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			pp.Close()
			s.stopMonitors()
			return nil, errors.New("chaos: cluster never recovered to serve produces")
		}
	}
	pp.Close()

	violations := append([]Violation(nil), s.stopMonitors()...)
	scan, err := ScanFeed(s.observer, s.Cfg.Topic, s.Cfg.Partitions, 60*time.Second)
	if err != nil {
		return violations, err
	}
	// Probe records are not in the ledger; drop them before checks so the
	// survival checker never counts them, and contiguity still covers them
	// via offsets.
	violations = append(violations, CheckAckedSurvival(scan, s.Ledger)...)
	violations = append(violations, CheckOffsetContiguity(scan)...)
	violations = append(violations, s.checkCounterConservation(scan)...)
	return violations, nil
}

// checkCounterConservation audits the instrumentation's own books against
// ground truth the scenario already holds: the producers' registry's acked
// counter must equal the ledger (both are written at the same SendSync
// resolution), the observer registry's consume counter and e2e histogram
// must equal the final scan (the observer only ever consumes during
// ScanFeed), and no counter anywhere may have gone backwards. A failover
// that loses or double-counts instrumentation shows up here even when the
// data itself survived.
func (s *Scenario) checkCounterConservation(scan *FeedScan) []Violation {
	var out []Violation
	const inv = "CounterConservation"

	acked := s.prodMet.CounterFamily("client.produce.acked.records", "topic").With(s.Cfg.Topic).Value()
	if acked != int64(s.Ledger.Len()) {
		out = append(out, violationf(inv,
			"acked counter %d != ledger %d for %s", acked, s.Ledger.Len(), s.Cfg.Topic))
	}

	var scanned int64
	for _, offs := range scan.Offsets {
		scanned += int64(len(offs))
	}
	consumed := s.obsMet.CounterFamily("client.consume.records", "topic").With(s.Cfg.Topic).Value()
	if consumed != scanned {
		out = append(out, violationf(inv,
			"consume counter %d != scanned records %d for %s", consumed, scanned, s.Cfg.Topic))
	}
	e2e := s.obsMet.HistogramFamily("client.e2e.latency.ns", "topic").With(s.Cfg.Topic).Count()
	if e2e != scanned {
		out = append(out, violationf(inv,
			"e2e latency observations %d != scanned records %d for %s", e2e, scanned, s.Cfg.Topic))
	}

	if n := metrics.NegativeAdds(); n > 0 {
		out = append(out, violationf(inv, "%d negative counter adds recorded process-wide", n))
	}
	return out
}

// Close shuts the stack down (idempotent with Finish).
func (s *Scenario) Close() {
	s.stopWorkload()
	s.stopMonitors()
	s.finished = true
	s.observer.Close()
	s.Stack.Shutdown()
}

package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/wire"
)

// startTieredStack boots a stack tuned for fast tiering: tiny segments, a
// tight hot horizon, and millisecond offload/retention cadence.
func startTieredStack(t *testing.T, brokers int) *Stack {
	t.Helper()
	s, err := Start(Config{
		Brokers:           brokers,
		SessionTimeout:    700 * time.Millisecond,
		RetentionInterval: 25 * time.Millisecond,
		TierInterval:      25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

// tieredSpec shapes the topic under test: 4 KiB segments, an 8 KiB hot
// horizon, unbounded total horizon.
func tieredSpec(name string, rf int16) wire.TopicSpec {
	return wire.TopicSpec{
		Name:              name,
		NumPartitions:     1,
		ReplicationFactor: rf,
		SegmentBytes:      4 << 10,
		Tiered:            true,
		HotRetentionMs:    -1,
		HotRetentionBytes: 8 << 10,
		RetentionMs:       -1,
		RetentionBytes:    -1,
	}
}

// produceN publishes sequenced records [from, to) and flushes. acks=all so
// the records survive any later forced failover (the failover test kills
// the leader; acked-but-unreplicated data carries no survival promise).
func produceN(t *testing.T, s *Stack, topic string, from, to int) {
	t.Helper()
	p := s.NewProducer(client.ProducerConfig{Acks: client.AcksAll})
	defer p.Close()
	for i := from; i < to; i++ {
		if err := p.Send(client.Message{
			Topic: topic,
			Key:   []byte(fmt.Sprintf("k-%06d", i)),
			Value: []byte(fmt.Sprintf("v-%06d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
}

// awaitOffload blocks until the partition's local log start advanced past
// zero (segments offloaded AND locally deleted) and returns the status.
func awaitOffload(t *testing.T, s *Stack, topic string) wire.TierStatusPartition {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		sts, err := s.TierStatus(topic)
		if err == nil && len(sts) == 1 && sts[0].LocalStartOffset > 0 && sts[0].TieredSegments > 0 {
			return sts[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("offload never advanced the local start: %+v (err %v)", sts, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// consumeAll reads records [from, to) and asserts every offset arrives
// exactly once, in order, with the value it was produced with.
func consumeAll(t *testing.T, s *Stack, topic string, from, to int64) {
	t.Helper()
	c := s.NewConsumer(client.ConsumerConfig{})
	defer c.Close()
	if err := c.Assign(topic, 0, from); err != nil {
		t.Fatal(err)
	}
	next := from
	deadline := time.Now().Add(30 * time.Second)
	for next < to {
		if time.Now().After(deadline) {
			t.Fatalf("consumed up to offset %d, want %d", next, to)
		}
		msgs, err := c.Poll(time.Second)
		if err != nil {
			// Transient during failover (stale metadata, dead leader);
			// the deadline bounds how long we tolerate it.
			time.Sleep(20 * time.Millisecond)
			continue
		}
		for _, m := range msgs {
			if m.Offset != next {
				t.Fatalf("offset %d, want %d (gap or duplicate across the cold→hot boundary)", m.Offset, next)
			}
			if want := fmt.Sprintf("v-%06d", m.Offset); string(m.Value) != want {
				t.Fatalf("offset %d value %q, want %q", m.Offset, m.Value, want)
			}
			next++
		}
	}
	if next != to {
		t.Fatalf("consumed %d records past the target", next-to)
	}
}

// TestTieredRewindAcrossBoundary is the acceptance test: a consumer started
// at offset 0 on a topic whose early segments were offloaded and locally
// deleted reads every record exactly once across the cold→hot boundary.
func TestTieredRewindAcrossBoundary(t *testing.T) {
	s := startTieredStack(t, 1)
	const topic = "tiered-feed"
	if err := s.CreateTopic(tieredSpec(topic, 1)); err != nil {
		t.Fatal(err)
	}
	const n = 1500
	produceN(t, s, topic, 0, n)
	st := awaitOffload(t, s, topic)
	if st.EarliestOffset != 0 {
		t.Fatalf("tiered earliest = %d, want 0 (nothing expired)", st.EarliestOffset)
	}
	if st.LocalStartOffset == 0 || st.TieredNextOffset < st.LocalStartOffset {
		t.Fatalf("tier status inconsistent: %+v", st)
	}
	// StartEarliest now means tiered-earliest.
	if off, err := s.Client().ListOffset(topic, 0, wire.TimestampEarliest); err != nil || off != 0 {
		t.Fatalf("ListOffset earliest = %d,%v; want 0", off, err)
	}
	consumeAll(t, s, topic, 0, n)
}

// TestTieredSeekOneBelowLocalStart is the out-of-range regression test:
// seeking exactly one record below the local log start must be served from
// the cold tier (not bounce through an out-of-range reset), and the record
// must be the right one.
func TestTieredSeekOneBelowLocalStart(t *testing.T) {
	s := startTieredStack(t, 1)
	const topic = "tiered-seek"
	if err := s.CreateTopic(tieredSpec(topic, 1)); err != nil {
		t.Fatal(err)
	}
	const n = 1200
	produceN(t, s, topic, 0, n)
	st := awaitOffload(t, s, topic)

	c := s.NewConsumer(client.ConsumerConfig{OnReset: client.ResetError})
	defer c.Close()
	target := st.LocalStartOffset - 1
	if err := c.Assign(topic, 0, target); err != nil {
		t.Fatal(err)
	}
	msgs, err := c.Poll(2 * time.Second)
	if err != nil {
		t.Fatalf("poll one below local start: %v (out-of-range leaked to the client)", err)
	}
	if len(msgs) == 0 || msgs[0].Offset != target {
		t.Fatalf("first message %+v, want offset %d", msgs, target)
	}
	if want := fmt.Sprintf("v-%06d", target); string(msgs[0].Value) != want {
		t.Fatalf("value %q, want %q", msgs[0].Value, want)
	}
}

// TestTieredOutOfRangeCarriesEarliest proves the out-of-range error carries
// the earliest AVAILABLE offset once total retention has expired the oldest
// cold segments: auto-reset lands exactly on the tiered-earliest instead of
// guessing.
func TestTieredOutOfRangeCarriesEarliest(t *testing.T) {
	s := startTieredStack(t, 1)
	const topic = "tiered-expire"
	spec := tieredSpec(topic, 1)
	spec.RetentionBytes = 24 << 10 // total horizon: ~6 segments hot+cold
	if err := s.CreateTopic(spec); err != nil {
		t.Fatal(err)
	}
	const n = 3000
	produceN(t, s, topic, 0, n)

	// Wait for total retention to advance the tiered earliest past zero.
	var st wire.TierStatusPartition
	deadline := time.Now().Add(15 * time.Second)
	for {
		sts, err := s.TierStatus(topic)
		if err == nil && len(sts) == 1 && sts[0].EarliestOffset > 0 {
			st = sts[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("total retention never advanced the tiered earliest: %+v (err %v)", sts, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Retention keeps sweeping in the background, so the earliest can move
	// between the status sample and the ListOffset — retry with a fresh
	// status until the two agree on the same settled value.
	for {
		off, err := s.Client().ListOffset(topic, 0, wire.TimestampEarliest)
		if err == nil && off == st.EarliestOffset {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ListOffset earliest = %d,%v; want %d", off, err, st.EarliestOffset)
		}
		if sts, err2 := s.TierStatus(topic); err2 == nil && len(sts) == 1 {
			st = sts[0]
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A consumer at offset 0 with ResetEarliest must resume exactly at the
	// tiered-earliest the error carried.
	c := s.NewConsumer(client.ConsumerConfig{OnReset: client.ResetEarliest})
	defer c.Close()
	if err := c.Assign(topic, 0, 0); err != nil {
		t.Fatal(err)
	}
	var first int64 = -1
	pollDeadline := time.Now().Add(10 * time.Second)
	for first < 0 && time.Now().Before(pollDeadline) {
		msgs, err := c.Poll(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) > 0 {
			first = msgs[0].Offset
		}
	}
	// Retention keeps running; the earliest can only have moved forward.
	if first < st.EarliestOffset {
		t.Fatalf("auto-reset resumed at %d, below the tiered earliest %d", first, st.EarliestOffset)
	}
}

// TestTieredFailoverRecoversFromManifest kills the leader of a tiered
// partition after offload and asserts the new leader serves the full
// history from offset 0 — the manifest, not the dead broker, is the source
// of truth for cold data, while followers replicated only the hot log.
func TestTieredFailoverRecoversFromManifest(t *testing.T) {
	s := startTieredStack(t, 3)
	const topic = "tiered-failover"
	if err := s.CreateTopic(tieredSpec(topic, 3)); err != nil {
		t.Fatal(err)
	}
	const n = 1200
	produceN(t, s, topic, 0, n)
	awaitOffload(t, s, topic)

	st, err := s.PartitionState(topic, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := st.Leader
	if !s.KillBroker(old) {
		t.Fatalf("kill broker %d failed", old)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := s.PartitionState(topic, 0)
		if err == nil && st.Leader >= 0 && st.Leader != old {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leadership never moved off %d", old)
		}
		time.Sleep(20 * time.Millisecond)
	}
	consumeAll(t, s, topic, 0, n)
}

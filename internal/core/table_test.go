package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/table"
	"repro/internal/wire"
)

func TestStackTableEndToEnd(t *testing.T) {
	s, err := Start(Config{Brokers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	if err := s.CreateTable("profiles", 4, 2); err != nil {
		t.Fatal(err)
	}

	tbl := table.New(s.Client(), "profiles", table.StringCodec(), table.StringCodec())
	defer tbl.Close()

	const n = 300
	for i := 0; i < n; i++ {
		if err := tbl.Put(fmt.Sprintf("user-%04d", i), fmt.Sprintf("v1-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites and deletes must materialize as the latest state per key.
	for i := 0; i < n; i += 3 {
		if err := tbl.Put(fmt.Sprintf("user-%04d", i), fmt.Sprintf("v2-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i += 10 {
		if err := tbl.Delete(fmt.Sprintf("user-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		key := fmt.Sprintf("user-%04d", i)
		// Lag bound 0: the serving view must reflect every acked write.
		v, found, err := tbl.GetWithin(key, 0)
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		switch {
		case i%10 == 1:
			if found {
				t.Fatalf("deleted key %s still present (%q)", key, v)
			}
		case i%3 == 0:
			if !found || v != fmt.Sprintf("v2-%04d", i) {
				t.Fatalf("key %s = %q found=%v, want v2", key, v, found)
			}
		default:
			if !found || v != fmt.Sprintf("v1-%04d", i) {
				t.Fatalf("key %s = %q found=%v, want v1", key, v, found)
			}
		}
	}

	// Freshness: after a bounded read at lag 0 succeeded on every
	// partition touched above, status must report applied == hw.
	sts, err := s.TableStatus("profiles")
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 4 {
		t.Fatalf("status partitions = %d, want 4", len(sts))
	}
	total := int64(0)
	for _, st := range sts {
		if st.Lag() != 0 {
			t.Fatalf("partition %d lag = %d after caught-up reads", st.Partition, st.Lag())
		}
		total += st.ApproxLen
	}
	live := int64(n - (n+8)/10) // n minus the deleted keys
	if total != live {
		t.Fatalf("total table size = %d, want %d", total, live)
	}

	// Range: per-partition ascending order, bounds honored.
	router := s.Table("profiles")
	res, err := router.RangePartition(0, []byte("user-"), []byte("user-~"), 1000, -1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Entries); i++ {
		if string(res.Entries[i-1].Key) >= string(res.Entries[i].Key) {
			t.Fatalf("range not ascending at %d: %q >= %q", i, res.Entries[i-1].Key, res.Entries[i].Key)
		}
	}

	// Paged range over all partitions sees exactly the live keys.
	seen := 0
	for p := int32(0); p < 4; p++ {
		from := []byte(nil)
		for {
			res, err := router.RangePartition(p, from, nil, 50, -1)
			if err != nil {
				t.Fatal(err)
			}
			seen += len(res.Entries)
			if !res.More {
				break
			}
			last := res.Entries[len(res.Entries)-1].Key
			from = append(append([]byte(nil), last...), 0)
		}
	}
	if int64(seen) != live {
		t.Fatalf("paged range saw %d keys, want %d", seen, live)
	}
}

// TestStackTableRouterMatchesProducerHash pins the routing contract: the
// router must look every key up in the partition the producer wrote it to.
func TestStackTableRouterMatchesProducerHash(t *testing.T) {
	h := &client.HashPartitioner{}
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		want := h.Partition(&client.Message{Key: key}, 8)
		got := table.HashKey(key, 8)
		if got != want {
			t.Fatalf("key %q: router partition %d, producer partition %d", key, got, want)
		}
	}
}

// TestStackTableBootstrapAfterFailover kills the leader of a compacted
// table partition and asserts the successor rebuilds the full view from its
// replicated log: every acked write readable, at lag 0, exactly the
// surviving keys.
func TestStackTableBootstrapAfterFailover(t *testing.T) {
	s, err := Start(Config{
		Brokers:            3,
		SessionTimeout:     700 * time.Millisecond,
		CompactionInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	if err := s.CreateTopic(wire.TopicSpec{
		Name: "accounts", NumPartitions: 1, ReplicationFactor: 3,
		SegmentBytes: 4 << 10, Compacted: true, Table: true,
	}); err != nil {
		t.Fatal(err)
	}

	tbl := table.New(s.Client(), "accounts", table.StringCodec(), table.StringCodec())
	defer tbl.Close()
	const n = 150
	for round := 0; round < 4; round++ {
		for i := 0; i < n; i++ {
			if err := tbl.Put(fmt.Sprintf("acct-%04d", i), fmt.Sprintf("r%d-%04d", round, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}

	st, err := s.PartitionState("accounts", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.KillBroker(st.Leader) {
		t.Fatalf("kill broker %d", st.Leader)
	}

	for i := 0; i < n; i++ {
		key := fmt.Sprintf("acct-%04d", i)
		v, found, err := tbl.GetWithin(key, 0)
		if err != nil {
			t.Fatalf("get %s after failover: %v", key, err)
		}
		if !found || v != fmt.Sprintf("r3-%04d", i) {
			t.Fatalf("key %s = %q found=%v after failover, want r3", key, v, found)
		}
	}
}

// TestStackTableSpecValidation pins the topic-combination guards the table
// subsystem depends on: a table must be compacted (the view is the latest
// record per key) and a compacted feed must not be tiered (table restore
// from offset 0 must never straddle the cold tier).
func TestStackTableSpecValidation(t *testing.T) {
	s, err := Start(Config{Brokers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)

	if err := s.CreateTopic(wire.TopicSpec{Name: "t1", Table: true}); err == nil {
		t.Fatal("table without compaction accepted")
	} else if wire.Code(err) != wire.ErrInvalidTopic {
		t.Fatalf("table without compaction: %v, want invalid topic", err)
	}

	if err := s.CreateTopic(wire.TopicSpec{Name: "t2", Compacted: true, Tiered: true}); err == nil {
		t.Fatal("tiered compacted feed accepted")
	} else if wire.Code(err) != wire.ErrInvalidTopic {
		t.Fatalf("tiered compacted: %v, want invalid topic", err)
	}

	if err := s.CreateTopic(wire.TopicSpec{Name: "t3", Compacted: true, Tiered: true, Table: true}); err == nil {
		t.Fatal("tiered table accepted")
	}

	if err := s.CreateTopic(wire.TopicSpec{Name: "t4", Compacted: true, Table: true}); err != nil {
		t.Fatalf("valid table spec rejected: %v", err)
	}
}

// TestStackTableNotServedOnPlainTopic pins the negative read path: table
// reads against a non-table topic fail with "table not served" (after the
// client's retries), not a hang or a wrong answer.
func TestStackTableNotServedOnPlainTopic(t *testing.T) {
	s, err := Start(Config{Brokers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	if err := s.CreateFeed("plain", 1, 1); err != nil {
		t.Fatal(err)
	}
	cli, err := s.NewClient("neg")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.TableGet("plain", 0, []byte("k"), -1)
	if err == nil {
		t.Fatal("table get on plain topic succeeded")
	}
	if wire.Code(err) != wire.ErrTableNotServed {
		t.Fatalf("err = %v, want table not served", err)
	}
}

package core

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
)

// TestQuotaIsolationUnderConcurrency is the multi-tenant acceptance test
// at stack level (§3.2/§4.4): two tenants hammer one leader from parallel
// goroutines — the aggressor floods with large values under a tight byte
// quota, the victim sends small records on its own client. Asserts:
//
//  1. the aggressor is throttled (broker verdicts honored client-side),
//  2. the victim's p99 produce latency stays bounded (it shares no quota
//     bucket with the aggressor and the aggressor is rate-limited off the
//     leader's critical path),
//  3. totals are conserved: every acknowledged record of both tenants is
//     readable exactly once from the shared partition.
func TestQuotaIsolationUnderConcurrency(t *testing.T) {
	s := startTestStack(t, 1)
	if err := s.CreateFeed("shared", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetQuota("aggr", cluster.QuotaConfig{ProduceBytesPerSec: 128 << 10}); err != nil {
		t.Fatalf("SetQuota: %v", err)
	}

	type tenantResult struct {
		producer *client.Producer
		acked    []string
		lat      []time.Duration
	}
	runTenant := func(principal string, goroutines, sends, valueBytes int) *tenantResult {
		cli, err := s.NewClient(principal)
		if err != nil {
			t.Fatalf("client %s: %v", principal, err)
		}
		t.Cleanup(cli.Close)
		p := client.NewProducer(cli, client.ProducerConfig{})
		t.Cleanup(func() { p.Close() })
		res := &tenantResult{producer: p}
		var mu sync.Mutex
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				filler := bytes.Repeat([]byte("v"), valueBytes)
				for i := 0; i < sends; i++ {
					v := fmt.Sprintf("%s/%d/%06d/%s", principal, g, i, filler)
					start := time.Now()
					_, err := p.SendSync(client.Message{Topic: "shared", Key: []byte(v[:16]), Value: []byte(v)})
					d := time.Since(start)
					if err != nil {
						continue // unacked sends carry no promise
					}
					mu.Lock()
					res.acked = append(res.acked, v)
					res.lat = append(res.lat, d)
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		return res
	}

	// Both tenants run concurrently: 2 goroutines each, the aggressor
	// pushing ~4x its per-second budget in large values.
	var aggr, victim *tenantResult
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); aggr = runTenant("aggr", 2, 8, 32<<10) }()
	go func() { defer wg.Done(); victim = runTenant("victim", 2, 100, 64) }()
	wg.Wait()

	// (1) The aggressor was throttled; the victim never was.
	if st := aggr.producer.Throttled(); st.Count == 0 {
		t.Fatalf("aggressor was never throttled: %+v", st)
	}
	if st := victim.producer.Throttled(); st.Count != 0 {
		t.Fatalf("victim was throttled: %+v", st)
	}

	// (2) Victim p99 bounded: while the aggressor is being rate-limited,
	// the victim's produce latency must stay in the tens of milliseconds,
	// not degrade toward the aggressor's multi-second pacing stalls.
	lat := append([]time.Duration(nil), victim.lat...)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) < 100 {
		t.Fatalf("victim acked only %d/200 sends", len(lat))
	}
	p99 := lat[len(lat)*99/100]
	if p99 > 500*time.Millisecond {
		t.Fatalf("victim p99 = %v under a throttled aggressor; isolation failed", p99)
	}

	// (3) Totals conserved: every acked record of both tenants is read
	// back exactly once.
	want := make(map[string]int, len(aggr.acked)+len(victim.acked))
	for _, v := range append(append([]string(nil), aggr.acked...), victim.acked...) {
		want[v]++
		if want[v] > 1 {
			t.Fatalf("duplicate acked value %q", v[:32])
		}
	}
	cons := s.NewConsumer(client.ConsumerConfig{})
	defer cons.Close()
	if err := cons.Assign("shared", 0, client.StartEarliest); err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int)
	deadline := time.Now().Add(30 * time.Second)
	for len(got) < len(want) && time.Now().Before(deadline) {
		msgs, err := cons.Poll(250 * time.Millisecond)
		if err != nil {
			continue
		}
		for _, m := range msgs {
			got[string(m.Value)]++
		}
	}
	for v := range want {
		if got[v] != 1 {
			t.Fatalf("acked value read %d times, want exactly 1: %q", got[v], v[:32])
		}
	}
}

// TestQuotaDescribeThroughStack covers the Stack-level admin surface:
// SetQuota/DescribeQuotas/DeleteQuota round trip through the wire API.
// (Survival across broker failover is covered by the chaos scenario
// TestChaosSmokeQuotaFailover.)
func TestQuotaDescribeThroughStack(t *testing.T) {
	s := startTestStack(t, 1)
	if err := s.SetQuota("tenant-x", cluster.QuotaConfig{ProduceBytesPerSec: 1 << 20, RequestsPerSec: 42}); err != nil {
		t.Fatal(err)
	}
	entries, err := s.DescribeQuotas()
	if err != nil || len(entries) != 1 {
		t.Fatalf("DescribeQuotas = %v, %v", entries, err)
	}
	e := entries[0]
	if e.Principal != "tenant-x" || e.ProduceBytesPerSec != 1<<20 || e.RequestsPerSec != 42 {
		t.Fatalf("entry = %+v", e)
	}
	if err := s.DeleteQuota("tenant-x"); err != nil {
		t.Fatal(err)
	}
	if entries, _ := s.DescribeQuotas(); len(entries) != 0 {
		t.Fatalf("quota survived delete: %v", entries)
	}
}

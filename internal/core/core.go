// Package core assembles a complete Liquid stack — coordination service,
// messaging-layer brokers, and the client/processing machinery — in one
// process, with brokers communicating over real TCP. It is the programmatic
// equivalent of deploying the two cooperating layers of the paper (§3):
// callers create feeds (topics), publish and subscribe through the
// messaging layer, and run stateful ETL jobs on the processing layer.
package core

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"repro/internal/archive"
	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/coord"
	"repro/internal/dfs"
	"repro/internal/metrics"
	"repro/internal/processing"
	"repro/internal/storage/cache"
	"repro/internal/wire"
)

// Config sizes a Liquid stack.
type Config struct {
	// Brokers is the messaging-layer node count (default 1).
	Brokers int
	// DataDir hosts broker logs and job state; empty creates a temp dir
	// that Shutdown removes.
	DataDir string
	// SessionTimeout is the broker liveness window; failover time is
	// bounded below by it (default 2s; tests use hundreds of ms).
	SessionTimeout time.Duration
	// ReplicaMaxLag is the ISR shrink threshold.
	ReplicaMaxLag time.Duration
	// OffsetsPartitions / OffsetsReplication size the offset manager's
	// internal topic.
	OffsetsPartitions  int32
	OffsetsReplication int16
	// RetentionInterval / CompactionInterval drive background log
	// housekeeping; zero disables each.
	RetentionInterval  time.Duration
	CompactionInterval time.Duration
	// DefaultSegmentBytes / DefaultRetentionMs / DefaultRetentionBytes
	// apply to topics that do not override them.
	DefaultSegmentBytes   int32
	DefaultRetentionMs    int64
	DefaultRetentionBytes int64
	// PageCache, when non-nil, attaches the OS page-cache model of
	// internal/storage/cache to every partition log on every broker
	// (paper §4.1 anti-caching): reads of non-resident pages pay the
	// modeled disk penalty. Experiments use it to reproduce disk-bound
	// consume behaviour on real hardware that would otherwise hide in
	// RAM.
	PageCache *cache.Config
	// Logger receives operational events from every component.
	Logger *slog.Logger
	// Metrics receives stack-wide counters; nil creates a registry.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Brokers == 0 {
		c.Brokers = 1
	}
	if c.SessionTimeout == 0 {
		c.SessionTimeout = 2 * time.Second
	}
	if c.OffsetsPartitions == 0 {
		c.OffsetsPartitions = 4
	}
	if c.OffsetsReplication == 0 {
		if c.Brokers >= 3 {
			c.OffsetsReplication = 3
		} else {
			c.OffsetsReplication = int16(c.Brokers)
		}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	return c
}

// Stack is a running Liquid deployment.
type Stack struct {
	cfg        Config
	store      *coord.Store
	stopExpiry func()
	brokers    []*broker.Broker
	cli        *client.Client
	dataRoot   string
	ownsData   bool
	jobs       []*processing.Job
	archivers  []*archive.Archiver
	archFS     *dfs.FS
	stopped    bool
}

// Start boots the coordination service and brokers, waits for the cluster
// to form, and returns a ready stack.
func Start(cfg Config) (*Stack, error) {
	cfg = cfg.withDefaults()
	dataRoot := cfg.DataDir
	ownsData := false
	if dataRoot == "" {
		dir, err := os.MkdirTemp("", "liquid-")
		if err != nil {
			return nil, err
		}
		dataRoot = dir
		ownsData = true
	}
	store := coord.New(coord.Config{})
	s := &Stack{
		cfg:        cfg,
		store:      store,
		stopExpiry: store.StartExpiry(cfg.SessionTimeout / 4),
		dataRoot:   dataRoot,
		ownsData:   ownsData,
	}
	for i := 0; i < cfg.Brokers; i++ {
		b, err := broker.Start(store, broker.Config{
			ID:                    int32(i + 1),
			DataDir:               filepath.Join(dataRoot, fmt.Sprintf("broker-%d", i+1)),
			SessionTimeout:        cfg.SessionTimeout,
			ReplicaMaxLag:         cfg.ReplicaMaxLag,
			RetentionInterval:     cfg.RetentionInterval,
			CompactionInterval:    cfg.CompactionInterval,
			OffsetsPartitions:     cfg.OffsetsPartitions,
			OffsetsReplication:    cfg.OffsetsReplication,
			DefaultSegmentBytes:   cfg.DefaultSegmentBytes,
			DefaultRetentionMs:    cfg.DefaultRetentionMs,
			DefaultRetentionBytes: cfg.DefaultRetentionBytes,
			PageCache:             cfg.PageCache,
			Logger:                cfg.Logger,
			Metrics:               cfg.Metrics,
		})
		if err != nil {
			s.Shutdown()
			return nil, fmt.Errorf("core: broker %d: %w", i+1, err)
		}
		s.brokers = append(s.brokers, b)
	}
	reg := cluster.NewRegistry(store)
	if live := reg.WaitForBrokers(cfg.Brokers, 10*time.Second); len(live) < cfg.Brokers {
		s.Shutdown()
		return nil, errors.New("core: cluster did not form")
	}
	cli, err := s.NewClient("liquid-stack")
	if err != nil {
		s.Shutdown()
		return nil, err
	}
	s.cli = cli
	return s, nil
}

// Addrs returns the brokers' bootstrap addresses.
func (s *Stack) Addrs() []string {
	out := make([]string, 0, len(s.brokers))
	for _, b := range s.brokers {
		out = append(out, b.Addr())
	}
	return out
}

// Client returns the stack's shared client.
func (s *Stack) Client() *client.Client { return s.cli }

// Metrics returns the stack-wide metrics registry.
func (s *Stack) Metrics() *metrics.Registry { return s.cfg.Metrics }

// DataDir returns the root data directory.
func (s *Stack) DataDir() string { return s.dataRoot }

// NewClient creates an independent client against this stack.
func (s *Stack) NewClient(id string) (*client.Client, error) {
	return client.New(client.Config{
		Bootstrap:    s.Addrs(),
		ClientID:     id,
		MaxRetries:   40,
		RetryBackoff: 25 * time.Millisecond,
		MetadataTTL:  time.Second,
	})
}

// CreateTopic creates a feed. Zero-valued spec fields use broker defaults.
func (s *Stack) CreateTopic(spec wire.TopicSpec) error {
	return s.cli.CreateTopic(spec)
}

// CreateFeed is shorthand for the common case.
func (s *Stack) CreateFeed(name string, partitions int32, replication int16) error {
	return s.cli.CreateTopic(wire.TopicSpec{
		Name:              name,
		NumPartitions:     partitions,
		ReplicationFactor: replication,
	})
}

// NewProducer returns a producer on the shared client.
func (s *Stack) NewProducer(cfg client.ProducerConfig) *client.Producer {
	return client.NewProducer(s.cli, cfg)
}

// NewConsumer returns a partition consumer on the shared client.
func (s *Stack) NewConsumer(cfg client.ConsumerConfig) *client.Consumer {
	return client.NewConsumer(s.cli, cfg)
}

// RunJob builds, starts and tracks a processing-layer job. The job's data
// directory defaults into the stack's.
func (s *Stack) RunJob(cfg processing.JobConfig) (*processing.Job, error) {
	if cfg.DataDir == "" {
		cfg.DataDir = filepath.Join(s.dataRoot, "jobs")
	}
	if cfg.Logger == nil {
		cfg.Logger = s.cfg.Logger
	}
	job, err := processing.NewJob(s.cli, cfg)
	if err != nil {
		return nil, err
	}
	if err := job.Start(); err != nil {
		return nil, err
	}
	s.jobs = append(s.jobs, job)
	return job, nil
}

// ArchiveFS returns the stack's archive file system, opening it lazily
// under DataDir()/archive. It is the offline substrate the archival bridge
// writes to; cost charging is disabled because the stack's DFS is local.
func (s *Stack) ArchiveFS() (*dfs.FS, error) {
	if s.archFS != nil {
		return s.archFS, nil
	}
	fs, err := dfs.Open(dfs.Config{Dir: filepath.Join(s.dataRoot, "archive")})
	if err != nil {
		return nil, err
	}
	s.archFS = fs
	return fs, nil
}

// StartArchiver launches a continuous feed→DFS export task set on the
// stack (paper §3: the log layer as the single source of truth feeding the
// offline backend). The archiver's FS defaults to the stack's ArchiveFS.
func (s *Stack) StartArchiver(cfg archive.ArchiverConfig) (*archive.Archiver, error) {
	if cfg.FS == nil {
		fs, err := s.ArchiveFS()
		if err != nil {
			return nil, err
		}
		cfg.FS = fs
	}
	if cfg.Logger == nil {
		cfg.Logger = s.cfg.Logger
	}
	a, err := archive.NewArchiver(s.cli, cfg)
	if err != nil {
		return nil, err
	}
	if err := a.Start(); err != nil {
		return nil, err
	}
	s.archivers = append(s.archivers, a)
	return a, nil
}

// ArchiveSnapshot archives a feed up to its current end offsets and
// returns; re-runs export only the delta.
func (s *Stack) ArchiveSnapshot(cfg archive.SnapshotConfig) (archive.SnapshotStats, error) {
	if cfg.FS == nil {
		fs, err := s.ArchiveFS()
		if err != nil {
			return archive.SnapshotStats{}, err
		}
		cfg.FS = fs
	}
	return archive.Snapshot(s.cli, cfg)
}

// Backfill republishes archived segments into a feed at a bounded rate —
// rewind beyond the messaging layer's retention window.
func (s *Stack) Backfill(cfg archive.BackfillConfig) (archive.BackfillStats, error) {
	if cfg.FS == nil {
		fs, err := s.ArchiveFS()
		if err != nil {
			return archive.BackfillStats{}, err
		}
		cfg.FS = fs
	}
	return archive.Backfill(s.cli, cfg)
}

// Broker returns the broker with the given id, or nil.
func (s *Stack) Broker(id int32) *broker.Broker {
	for _, b := range s.brokers {
		if b.ID() == id {
			return b
		}
	}
	return nil
}

// KillBroker crashes a broker (no graceful session close): the controller
// detects the failure via session expiry and fails leadership over, as in
// paper §4.3. It returns false for unknown ids.
func (s *Stack) KillBroker(id int32) bool {
	b := s.Broker(id)
	if b == nil {
		return false
	}
	b.Kill()
	return true
}

// StopBroker gracefully stops a broker (immediate session close).
func (s *Stack) StopBroker(id int32) bool {
	b := s.Broker(id)
	if b == nil {
		return false
	}
	b.Stop()
	return true
}

// Shutdown stops jobs, brokers and the coordinator, removing owned data.
func (s *Stack) Shutdown() {
	if s.stopped {
		return
	}
	s.stopped = true
	for _, a := range s.archivers {
		_ = a.Stop()
	}
	for _, j := range s.jobs {
		j.Stop()
	}
	if s.archFS != nil {
		s.archFS.Close()
	}
	if s.cli != nil {
		s.cli.Close()
	}
	for _, b := range s.brokers {
		b.Stop()
	}
	if s.stopExpiry != nil {
		s.stopExpiry()
	}
	if s.ownsData {
		os.RemoveAll(s.dataRoot)
	}
}

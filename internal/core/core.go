// Package core assembles a complete Liquid stack — coordination service,
// messaging-layer brokers, and the client/processing machinery — in one
// process, with brokers communicating over real TCP. It is the programmatic
// equivalent of deploying the two cooperating layers of the paper (§3):
// callers create feeds (topics), publish and subscribe through the
// messaging layer, and run stateful ETL jobs on the processing layer.
package core

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/archive"
	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/coord"
	"repro/internal/dfs"
	"repro/internal/metrics"
	"repro/internal/processing"
	"repro/internal/storage/cache"
	"repro/internal/storage/log"
	"repro/internal/table"
	"repro/internal/wire"
)

// FaultNetwork is the hook-and-control surface of an injectable transport
// (implemented by internal/chaos.Network). When attached via Config.Chaos,
// every broker listener, broker-to-broker replication dial and client dial
// in the stack crosses the injected network, and the Stack's chaos controls
// (PartitionNetwork, IsolateBroker, HealBroker, HealNetwork) become live.
type FaultNetwork interface {
	// BrokerListen returns the listen hook for a broker id.
	BrokerListen(id int32) func(host string, port int32) (net.Listener, error)
	// BrokerDial returns the dial hook for a broker's outbound connections.
	BrokerDial(id int32) client.Dialer
	// ClientDial returns the dial hook for stack clients.
	ClientDial() client.Dialer
	// PartitionBrokers cuts links between two broker groups, both ways.
	PartitionBrokers(groupA, groupB []int32)
	// IsolateBroker cuts a broker off from every peer and client.
	IsolateBroker(id int32)
	// HealBroker restores an isolated or severed broker's links.
	HealBroker(id int32)
	// Heal clears every injected fault.
	Heal()
}

// Config sizes a Liquid stack.
type Config struct {
	// Brokers is the messaging-layer node count (default 1).
	Brokers int
	// DataDir hosts broker logs and job state; empty creates a temp dir
	// that Shutdown removes.
	DataDir string
	// SessionTimeout is the broker liveness window; failover time is
	// bounded below by it (default 2s; tests use hundreds of ms).
	SessionTimeout time.Duration
	// ReplicaMaxLag is the ISR shrink threshold.
	ReplicaMaxLag time.Duration
	// OffsetsPartitions / OffsetsReplication size the offset manager's
	// internal topic.
	OffsetsPartitions  int32
	OffsetsReplication int16
	// RetentionInterval / CompactionInterval drive background log
	// housekeeping; zero disables each.
	RetentionInterval  time.Duration
	CompactionInterval time.Duration
	// DefaultSegmentBytes / DefaultRetentionMs / DefaultRetentionBytes
	// apply to topics that do not override them.
	DefaultSegmentBytes   int32
	DefaultRetentionMs    int64
	DefaultRetentionBytes int64
	// Durability is the WAL sync discipline every broker applies to its
	// partition logs (log.Durability): none/interval/batch/group-commit
	// fsync policies, with produce acks deferred behind the group
	// fdatasync under SyncGroup. The zero value keeps legacy OS-buffered
	// flushing.
	Durability log.Durability
	// DisableZeroCopyFetch switches every broker's fetch path back to the
	// legacy buffered re-encode instead of splicing raw batch ranges from
	// segment files into the socket. For equivalence testing.
	DisableZeroCopyFetch bool
	// PageCache, when non-nil, attaches the OS page-cache model of
	// internal/storage/cache to every partition log on every broker
	// (paper §4.1 anti-caching): reads of non-resident pages pay the
	// modeled disk penalty. Experiments use it to reproduce disk-bound
	// consume behaviour on real hardware that would otherwise hide in
	// RAM.
	PageCache *cache.Config
	// TierInterval is how often partition leaders of tiered topics offload
	// sealed segments to the DFS and enforce the total retention horizon
	// (default 500ms; negative disables the loop). Tiered topics are
	// created with TopicSpec.Tiered; their cold tier lives on a DFS under
	// DataDir()/tier shared by every broker in the stack.
	TierInterval time.Duration
	// TierCacheBytes bounds each broker's cold-reader LRU (the §4.1
	// page-cache model's cold-tier analogue); 0 uses the default.
	TierCacheBytes int64
	// TierUploadHook is a crash-injection hook for recovery tests: it runs
	// on a partition leader after a cold segment upload and before its
	// manifest commit. Nil in production.
	TierUploadHook func(topic string, partition int32, path string) error
	// DefaultQuota is the rate quota every broker applies to principals
	// (client-ids) without a persisted per-principal quota — the safety
	// net of the multi-tenant story (§3.2/§4.4: a runaway producer must
	// not degrade co-located tenants). The zero value disables default
	// governance; per-principal quotas are set with Stack.SetQuota (or
	// liquid-admin `quota set`) and survive broker failover because they
	// live in the coordination service.
	DefaultQuota cluster.QuotaConfig
	// Chaos, when non-nil, routes every listener and dial in the stack
	// through the injected fault network (internal/chaos), enabling the
	// §4.3 failure experiments: severed links, asymmetric partitions,
	// delayed/dropped/duplicated/corrupted frames. Nil costs nothing.
	Chaos FaultNetwork
	// Clock is the coordination service's clock (session deadlines and
	// expiry); nil means time.Now. Failure tests inject a fake clock and
	// call Coord().ExpireSessions() to drive failover detection
	// deterministically instead of sleeping through real timeouts.
	Clock func() time.Time
	// Logger receives operational events from every component.
	Logger *slog.Logger
	// Metrics receives stack-wide counters; nil creates a registry.
	Metrics *metrics.Registry
	// OpsAddr, when non-empty, gives every broker an ops HTTP server
	// (/metrics, /healthz, /status, /debug/pprof/*, /debug/slowlog) bound
	// to this address. With more than one broker it must carry port 0
	// ("127.0.0.1:0") so each broker picks its own ephemeral port; bound
	// addresses are read back with Stack.OpsAddrs. Empty disables the
	// servers.
	OpsAddr string
	// DisableInstrumentation turns off request-path metric families, WAL
	// metrics, client-side e2e latency tracking and the gauge-exporter
	// tick on every broker and stack client. Exists for the E25
	// benchmark's baseline.
	DisableInstrumentation bool
}

func (c Config) withDefaults() Config {
	if c.Brokers == 0 {
		c.Brokers = 1
	}
	if c.SessionTimeout == 0 {
		c.SessionTimeout = 2 * time.Second
	}
	if c.OffsetsPartitions == 0 {
		c.OffsetsPartitions = 4
	}
	if c.OffsetsReplication == 0 {
		if c.Brokers >= 3 {
			c.OffsetsReplication = 3
		} else {
			c.OffsetsReplication = int16(c.Brokers)
		}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	return c
}

// Stack is a running Liquid deployment.
type Stack struct {
	cfg        Config
	store      *coord.Store
	reg        *cluster.Registry
	stopExpiry func()
	brokers    []*broker.Broker
	brokerCfgs []broker.Config // saved for RestartBroker
	cli        *client.Client
	dataRoot   string
	ownsData   bool
	jobs       []*processing.Job
	archivers  []*archive.Archiver
	archFS     *dfs.FS
	tierFS     *dfs.FS
	stopped    bool
}

// Start boots the coordination service and brokers, waits for the cluster
// to form, and returns a ready stack.
func Start(cfg Config) (*Stack, error) {
	cfg = cfg.withDefaults()
	dataRoot := cfg.DataDir
	ownsData := false
	if dataRoot == "" {
		dir, err := os.MkdirTemp("", "liquid-")
		if err != nil {
			return nil, err
		}
		dataRoot = dir
		ownsData = true
	}
	store := coord.New(coord.Config{Now: cfg.Clock})
	s := &Stack{
		cfg:        cfg,
		store:      store,
		reg:        cluster.NewRegistry(store),
		stopExpiry: store.StartExpiry(cfg.SessionTimeout / 4),
		dataRoot:   dataRoot,
		ownsData:   ownsData,
	}
	// The tier DFS is shared by every broker (the cold tier of tiered
	// topics survives any single broker, like a real DFS would); it must
	// exist before brokers start so leaders can adopt tier state.
	tierFS, err := dfs.Open(dfs.Config{Dir: filepath.Join(dataRoot, "tier")})
	if err != nil {
		s.Shutdown()
		return nil, fmt.Errorf("core: tier fs: %w", err)
	}
	s.tierFS = tierFS
	for i := 0; i < cfg.Brokers; i++ {
		id := int32(i + 1)
		bcfg := broker.Config{
			ID:                     id,
			DataDir:                filepath.Join(dataRoot, fmt.Sprintf("broker-%d", id)),
			SessionTimeout:         cfg.SessionTimeout,
			ReplicaMaxLag:          cfg.ReplicaMaxLag,
			RetentionInterval:      cfg.RetentionInterval,
			CompactionInterval:     cfg.CompactionInterval,
			OffsetsPartitions:      cfg.OffsetsPartitions,
			OffsetsReplication:     cfg.OffsetsReplication,
			DefaultSegmentBytes:    cfg.DefaultSegmentBytes,
			DefaultRetentionMs:     cfg.DefaultRetentionMs,
			DefaultRetentionBytes:  cfg.DefaultRetentionBytes,
			Durability:             cfg.Durability,
			DisableZeroCopyFetch:   cfg.DisableZeroCopyFetch,
			PageCache:              cfg.PageCache,
			DefaultQuota:           cfg.DefaultQuota,
			TierFS:                 tierFS,
			TierInterval:           cfg.TierInterval,
			TierCacheBytes:         cfg.TierCacheBytes,
			TierUploadHook:         cfg.TierUploadHook,
			Now:                    cfg.Clock,
			Logger:                 cfg.Logger,
			Metrics:                cfg.Metrics,
			OpsAddr:                cfg.OpsAddr,
			DisableInstrumentation: cfg.DisableInstrumentation,
		}
		if cfg.Chaos != nil {
			bcfg.Listen = cfg.Chaos.BrokerListen(id)
			bcfg.Dial = cfg.Chaos.BrokerDial(id)
		}
		b, err := broker.Start(store, bcfg)
		if err != nil {
			s.Shutdown()
			return nil, fmt.Errorf("core: broker %d: %w", id, err)
		}
		s.brokers = append(s.brokers, b)
		s.brokerCfgs = append(s.brokerCfgs, bcfg)
	}
	if live := s.reg.WaitForBrokers(cfg.Brokers, 10*time.Second); len(live) < cfg.Brokers {
		s.Shutdown()
		return nil, errors.New("core: cluster did not form")
	}
	cli, err := s.NewClient("liquid-stack")
	if err != nil {
		s.Shutdown()
		return nil, err
	}
	s.cli = cli
	return s, nil
}

// Addrs returns the brokers' bootstrap addresses.
func (s *Stack) Addrs() []string {
	out := make([]string, 0, len(s.brokers))
	for _, b := range s.brokers {
		out = append(out, b.Addr())
	}
	return out
}

// OpsAddrs returns each broker's bound ops HTTP address, index-aligned
// with Addrs; entries are "" for brokers running without an ops server.
func (s *Stack) OpsAddrs() []string {
	out := make([]string, 0, len(s.brokers))
	for _, b := range s.brokers {
		out = append(out, b.OpsAddr())
	}
	return out
}

// Client returns the stack's shared client.
func (s *Stack) Client() *client.Client { return s.cli }

// Metrics returns the stack-wide metrics registry.
func (s *Stack) Metrics() *metrics.Registry { return s.cfg.Metrics }

// DataDir returns the root data directory.
func (s *Stack) DataDir() string { return s.dataRoot }

// NewClient creates an independent client against this stack. When a chaos
// network is attached the client dials through it, so client links are
// severable like broker links.
func (s *Stack) NewClient(id string) (*client.Client, error) {
	cfg := client.Config{
		Bootstrap:    s.Addrs(),
		ClientID:     id,
		MaxRetries:   40,
		RetryBackoff: 25 * time.Millisecond,
		MetadataTTL:  time.Second,
	}
	if s.cfg.Chaos != nil {
		cfg.Dialer = s.cfg.Chaos.ClientDial()
	}
	if !s.cfg.DisableInstrumentation {
		cfg.Metrics = s.cfg.Metrics
	}
	return client.New(cfg)
}

// CreateTopic creates a feed. Zero-valued spec fields use broker defaults.
func (s *Stack) CreateTopic(spec wire.TopicSpec) error {
	return s.cli.CreateTopic(spec)
}

// CreateFeed is shorthand for the common case.
func (s *Stack) CreateFeed(name string, partitions int32, replication int16) error {
	return s.cli.CreateTopic(wire.TopicSpec{
		Name:              name,
		NumPartitions:     partitions,
		ReplicationFactor: replication,
	})
}

// CreateTieredFeed creates a feed with tiered log storage: leaders offload
// sealed segments to the stack's tier DFS and serve unbounded rewind
// through the ordinary fetch API. hotRetentionBytes bounds the local (hot)
// log per partition; the topic's RetentionMs/RetentionBytes defaults bound
// the total tiered horizon.
func (s *Stack) CreateTieredFeed(name string, partitions int32, replication int16, hotRetentionBytes int64) error {
	return s.cli.CreateTopic(wire.TopicSpec{
		Name:              name,
		NumPartitions:     partitions,
		ReplicationFactor: replication,
		Tiered:            true,
		HotRetentionBytes: hotRetentionBytes,
	})
}

// TierStatus returns the tiered-storage status of a topic's partitions,
// each answered by its current leader.
func (s *Stack) TierStatus(topic string) ([]wire.TierStatusPartition, error) {
	return s.cli.TierStatus(topic)
}

// CreateTable creates a queryable table feed: a compacted topic whose
// partition leaders materialize the log into key→value views and serve
// point reads and range scans (internal/table, paper §2/§3.2 serve-side
// reads).
func (s *Stack) CreateTable(name string, partitions int32, replication int16) error {
	return s.cli.CreateTopic(wire.TopicSpec{
		Name:              name,
		NumPartitions:     partitions,
		ReplicationFactor: replication,
		Compacted:         true,
		Table:             true,
	})
}

// Table returns an untyped read router for a table topic: keys hash to
// partitions with the producer's partitioner and reads go to the broker
// currently materializing each partition.
func (s *Stack) Table(topic string) *table.Router {
	return table.NewRouter(s.cli, topic)
}

// TableStatus reports every partition's materializer freshness (applied
// offset vs high watermark), each answered by its current leader.
func (s *Stack) TableStatus(topic string) ([]client.TableStatusPartition, error) {
	return s.cli.TableStatus(topic)
}

// SetQuota persists a principal's (client-id's) rate quota cluster-wide:
// every broker enforces it in its produce/fetch/request paths, surfacing
// violations as ThrottleTimeMs backpressure that clients honor. Zero
// fields mean unlimited on that dimension. The config lives in the
// coordination service, so it survives broker failover.
func (s *Stack) SetQuota(principal string, q cluster.QuotaConfig) error {
	return s.cli.SetQuota(wire.QuotaEntry{
		Principal:          principal,
		ProduceBytesPerSec: q.ProduceBytesPerSec,
		FetchBytesPerSec:   q.FetchBytesPerSec,
		RequestsPerSec:     q.RequestsPerSec,
	})
}

// DeleteQuota removes a principal's quota; it falls back to the stack's
// DefaultQuota.
func (s *Stack) DeleteQuota(principal string) error {
	return s.cli.DeleteQuota(principal)
}

// DescribeQuotas returns the persisted quotas for the named principals, or
// all of them when none are named.
func (s *Stack) DescribeQuotas(principals ...string) ([]wire.QuotaEntry, error) {
	return s.cli.DescribeQuotas(principals...)
}

// NewProducer returns a producer on the shared client.
func (s *Stack) NewProducer(cfg client.ProducerConfig) *client.Producer {
	return client.NewProducer(s.cli, cfg)
}

// NewConsumer returns a partition consumer on the shared client.
func (s *Stack) NewConsumer(cfg client.ConsumerConfig) *client.Consumer {
	return client.NewConsumer(s.cli, cfg)
}

// RunJob builds, starts and tracks a processing-layer job. The job's data
// directory defaults into the stack's.
func (s *Stack) RunJob(cfg processing.JobConfig) (*processing.Job, error) {
	if cfg.DataDir == "" {
		cfg.DataDir = filepath.Join(s.dataRoot, "jobs")
	}
	if cfg.Logger == nil {
		cfg.Logger = s.cfg.Logger
	}
	job, err := processing.NewJob(s.cli, cfg)
	if err != nil {
		return nil, err
	}
	if err := job.Start(); err != nil {
		return nil, err
	}
	s.jobs = append(s.jobs, job)
	return job, nil
}

// TierFS returns the stack's tiered-storage file system (the cold tier of
// tiered topics, under DataDir()/tier). It is shared by every broker.
func (s *Stack) TierFS() *dfs.FS { return s.tierFS }

// ArchiveFS returns the stack's archive file system, opening it lazily
// under DataDir()/archive. It is the offline substrate the archival bridge
// writes to; cost charging is disabled because the stack's DFS is local.
func (s *Stack) ArchiveFS() (*dfs.FS, error) {
	if s.archFS != nil {
		return s.archFS, nil
	}
	fs, err := dfs.Open(dfs.Config{Dir: filepath.Join(s.dataRoot, "archive")})
	if err != nil {
		return nil, err
	}
	s.archFS = fs
	return fs, nil
}

// StartArchiver launches a continuous feed→DFS export task set on the
// stack (paper §3: the log layer as the single source of truth feeding the
// offline backend). The archiver's FS defaults to the stack's ArchiveFS.
func (s *Stack) StartArchiver(cfg archive.ArchiverConfig) (*archive.Archiver, error) {
	if cfg.FS == nil {
		fs, err := s.ArchiveFS()
		if err != nil {
			return nil, err
		}
		cfg.FS = fs
	}
	if cfg.Logger == nil {
		cfg.Logger = s.cfg.Logger
	}
	a, err := archive.NewArchiver(s.cli, cfg)
	if err != nil {
		return nil, err
	}
	if err := a.Start(); err != nil {
		return nil, err
	}
	s.archivers = append(s.archivers, a)
	return a, nil
}

// ArchiveSnapshot archives a feed up to its current end offsets and
// returns; re-runs export only the delta.
func (s *Stack) ArchiveSnapshot(cfg archive.SnapshotConfig) (archive.SnapshotStats, error) {
	if cfg.FS == nil {
		fs, err := s.ArchiveFS()
		if err != nil {
			return archive.SnapshotStats{}, err
		}
		cfg.FS = fs
	}
	return archive.Snapshot(s.cli, cfg)
}

// Backfill republishes archived segments into a feed at a bounded rate —
// rewind beyond the messaging layer's retention window.
func (s *Stack) Backfill(cfg archive.BackfillConfig) (archive.BackfillStats, error) {
	if cfg.FS == nil {
		fs, err := s.ArchiveFS()
		if err != nil {
			return archive.BackfillStats{}, err
		}
		cfg.FS = fs
	}
	return archive.Backfill(s.cli, cfg)
}

// Broker returns the broker with the given id, or nil.
func (s *Stack) Broker(id int32) *broker.Broker {
	for _, b := range s.brokers {
		if b.ID() == id {
			return b
		}
	}
	return nil
}

// KillBroker crashes a broker (no graceful session close): the controller
// detects the failure via session expiry and fails leadership over, as in
// paper §4.3. It returns false for unknown ids.
func (s *Stack) KillBroker(id int32) bool {
	b := s.Broker(id)
	if b == nil {
		return false
	}
	b.Kill()
	return true
}

// StopBroker gracefully stops a broker (immediate session close).
func (s *Stack) StopBroker(id int32) bool {
	b := s.Broker(id)
	if b == nil {
		return false
	}
	b.Stop()
	return true
}

// RestartBroker boots a previously killed or stopped broker again on its
// original data directory — the recovering machine of paper §4.3. The
// broker re-registers (on a fresh port), truncates uncommitted suffixes as
// it rejoins as a follower, and catches back up through replication. It is
// the repair half of the failure experiments: kill, observe failover,
// restart, observe the ISR grow back.
func (s *Stack) RestartBroker(id int32) error {
	idx := -1
	for i, b := range s.brokers {
		if b.ID() == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("core: unknown broker %d", id)
	}
	s.brokers[idx].Stop() // idempotent; a killed broker is already stopped
	b, err := broker.Start(s.store, s.brokerCfgs[idx])
	if err != nil {
		return fmt.Errorf("core: restart broker %d: %w", id, err)
	}
	s.brokers[idx] = b
	return nil
}

// Coord exposes the coordination store (the stand-in ZooKeeper ensemble):
// failure tests watch partition state through it and, with an injected
// Clock, drive session expiry deterministically.
func (s *Stack) Coord() *coord.Store { return s.store }

// ControllerID returns the broker currently holding the controller seat,
// or -1 during an election.
func (s *Stack) ControllerID() int32 { return s.reg.ControllerID() }

// PartitionState reads a partition's committed leadership state.
func (s *Stack) PartitionState(topic string, partition int32) (cluster.PartitionState, error) {
	st, _, err := s.reg.PartitionState(topic, partition)
	return st, err
}

// PartitionNetwork cuts the network between two broker groups, both
// directions, through the attached chaos network (paper §4.3: replicas
// partitioned past ReplicaMaxLag leave the ISR). It returns false when the
// stack runs without a chaos network.
func (s *Stack) PartitionNetwork(groupA, groupB []int32) bool {
	if s.cfg.Chaos == nil {
		return false
	}
	s.cfg.Chaos.PartitionBrokers(groupA, groupB)
	return true
}

// IsolateBroker cuts one broker off from every peer and client — the
// network analogue of KillBroker: the process lives, its links are dead.
func (s *Stack) IsolateBroker(id int32) bool {
	if s.cfg.Chaos == nil {
		return false
	}
	s.cfg.Chaos.IsolateBroker(id)
	return true
}

// HealBroker restores an isolated or partitioned broker's links.
func (s *Stack) HealBroker(id int32) bool {
	if s.cfg.Chaos == nil {
		return false
	}
	s.cfg.Chaos.HealBroker(id)
	return true
}

// HealNetwork clears every injected network fault.
func (s *Stack) HealNetwork() bool {
	if s.cfg.Chaos == nil {
		return false
	}
	s.cfg.Chaos.Heal()
	return true
}

// Shutdown stops jobs, brokers and the coordinator, removing owned data.
func (s *Stack) Shutdown() {
	if s.stopped {
		return
	}
	s.stopped = true
	for _, a := range s.archivers {
		_ = a.Stop()
	}
	for _, j := range s.jobs {
		j.Stop()
	}
	if s.archFS != nil {
		s.archFS.Close()
	}
	if s.cli != nil {
		s.cli.Close()
	}
	for _, b := range s.brokers {
		b.Stop()
	}
	if s.tierFS != nil {
		s.tierFS.Close() // after brokers: housekeeping may be offloading
	}
	if s.stopExpiry != nil {
		s.stopExpiry()
	}
	if s.ownsData {
		os.RemoveAll(s.dataRoot)
	}
}

package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/processing"
	"repro/internal/wire"
)

func startTestStack(t *testing.T, brokers int) *Stack {
	t.Helper()
	s, err := Start(Config{Brokers: brokers, SessionTimeout: 700 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func TestStackLifecycle(t *testing.T) {
	s := startTestStack(t, 1)
	if len(s.Addrs()) != 1 {
		t.Fatalf("addrs = %v", s.Addrs())
	}
	if s.Client() == nil || s.Metrics() == nil || s.DataDir() == "" {
		t.Fatal("accessors broken")
	}
	// Shutdown is idempotent.
	s.Shutdown()
	s.Shutdown()
}

func TestStackProduceConsume(t *testing.T) {
	s := startTestStack(t, 1)
	if err := s.CreateFeed("f", 2, 1); err != nil {
		t.Fatal(err)
	}
	p := s.NewProducer(client.ProducerConfig{})
	defer p.Close()
	for i := 0; i < 10; i++ {
		if err := p.Send(client.Message{Topic: "f", Value: []byte(fmt.Sprint(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	cons := s.NewConsumer(client.ConsumerConfig{})
	defer cons.Close()
	cons.Assign("f", 0, client.StartEarliest)
	cons.Assign("f", 1, client.StartEarliest)
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < 10 && time.Now().Before(deadline) {
		msgs, err := cons.Poll(200 * time.Millisecond)
		if err != nil {
			continue
		}
		got += len(msgs)
	}
	if got != 10 {
		t.Fatalf("consumed %d/10", got)
	}
}

func TestStackMultiBrokerSpreadsLeadership(t *testing.T) {
	s := startTestStack(t, 3)
	if err := s.CreateFeed("spread", 6, 2); err != nil {
		t.Fatal(err)
	}
	leaders := map[int32]int{}
	for p := int32(0); p < 6; p++ {
		l, err := s.Client().LeaderFor("spread", p)
		if err != nil {
			t.Fatal(err)
		}
		leaders[l]++
	}
	if len(leaders) != 3 {
		t.Fatalf("leadership on %d/3 brokers: %v", len(leaders), leaders)
	}
}

func TestStackKillBroker(t *testing.T) {
	s := startTestStack(t, 3)
	if err := s.CreateFeed("kb", 1, 3); err != nil {
		t.Fatal(err)
	}
	p := s.NewProducer(client.ProducerConfig{Acks: client.AcksAll})
	defer p.Close()
	if _, err := p.SendSync(client.Message{Topic: "kb", Value: []byte("before")}); err != nil {
		t.Fatal(err)
	}
	leader, _ := s.Client().LeaderFor("kb", 0)
	if !s.KillBroker(leader) {
		t.Fatal("kill returned false")
	}
	if s.KillBroker(99) {
		t.Fatal("killing unknown broker returned true")
	}
	if s.Broker(leader) == nil {
		t.Fatal("killed broker should still be addressable in the struct")
	}
	// Produce recovers after failover.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := p.SendSync(client.Message{Topic: "kb", Value: []byte("after")}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("produce never recovered after kill")
		}
	}
}

func TestStackRunJobWiring(t *testing.T) {
	s := startTestStack(t, 1)
	s.CreateFeed("ji", 1, 1)
	s.CreateFeed("jo", 1, 1)
	job, err := s.RunJob(processing.JobConfig{
		Name:   "wire",
		Inputs: []string{"ji"},
		Factory: func() processing.StreamTask {
			return processing.TaskFunc(func(msg client.Message, _ *processing.TaskContext, out *processing.Collector) error {
				return out.Send("jo", msg.Key, msg.Value)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.NumTasks() != 1 {
		t.Fatalf("tasks = %d", job.NumTasks())
	}
	p := s.NewProducer(client.ProducerConfig{})
	defer p.Close()
	p.SendSync(client.Message{Topic: "ji", Value: []byte("x")})
	cons := s.NewConsumer(client.ConsumerConfig{})
	defer cons.Close()
	cons.Assign("jo", 0, client.StartEarliest)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		msgs, err := cons.Poll(200 * time.Millisecond)
		if err == nil && len(msgs) > 0 {
			return
		}
	}
	t.Fatal("job output never arrived")
}

func TestStackInvalidJob(t *testing.T) {
	s := startTestStack(t, 1)
	if _, err := s.RunJob(processing.JobConfig{}); err == nil {
		t.Fatal("invalid job accepted")
	}
	// Jobs on missing inputs fail at Start.
	_, err := s.RunJob(processing.JobConfig{
		Name:    "bad",
		Inputs:  []string{"missing"},
		Factory: func() processing.StreamTask { return processing.TaskFunc(nil) },
	})
	if err == nil {
		t.Fatal("job on missing topic accepted")
	}
}

func TestStackTopicSpecPassthrough(t *testing.T) {
	s := startTestStack(t, 1)
	err := s.CreateTopic(wire.TopicSpec{
		Name:          "compacted-feed",
		NumPartitions: 1,
		Compacted:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTopic(wire.TopicSpec{Name: "compacted-feed", NumPartitions: 1}); err == nil {
		t.Fatal("duplicate create accepted")
	}
}

func TestStackDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Brokers != 1 || cfg.OffsetsPartitions == 0 || cfg.OffsetsReplication != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
	cfg3 := Config{Brokers: 3}.withDefaults()
	if cfg3.OffsetsReplication != 3 {
		t.Fatalf("3-broker offsets replication = %d, want 3", cfg3.OffsetsReplication)
	}
}

// Failover regression tests for the §4.3 guarantees at the stack level:
// kill the partition leader (and, separately, the controller) while
// acks=all producers run, and prove that no acknowledged record is lost and
// that records acked before the kill appear exactly once after the new
// leader is elected. External test package so it can exercise only the
// public Stack surface.
package core_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
)

// startFailoverStack boots a 3-broker stack with failover-friendly
// timeouts.
func startFailoverStack(t *testing.T) *core.Stack {
	t.Helper()
	s, err := core.Start(core.Config{Brokers: 3, SessionTimeout: 700 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

// startAckedProducers launches n acks=all producers sending unique values
// into topic until stop closes, recording every acked value in the ledger.
func startAckedProducers(t *testing.T, s *core.Stack, topic string, n int, ledger *chaos.Ledger, stop <-chan struct{}) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cli, err := s.NewClient(fmt.Sprintf("failover-prod-%d", id))
			if err != nil {
				return
			}
			defer cli.Close()
			p := client.NewProducer(cli, client.ProducerConfig{Acks: client.AcksAll})
			defer p.Close()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				v := fmt.Sprintf("p%d/%06d", id, seq)
				if _, err := p.SendSync(client.Message{Topic: topic, Key: []byte("k"), Value: []byte(v)}); err == nil {
					ledger.Acked(v)
				}
			}
		}(i)
	}
	return &wg
}

// awaitAcked waits until the ledger holds at least n values.
func awaitAcked(t *testing.T, ledger *chaos.Ledger, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for ledger.Len() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d records acked before timeout", ledger.Len(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runVictimFailover drives the shared shape of both regression tests:
// produce through a kill of the broker pickVictim selects, then verify the
// ledger against a full scan.
func runVictimFailover(t *testing.T, pickVictim func(s *core.Stack) int32) {
	s := startFailoverStack(t)
	const topic = "failover"
	if err := s.CreateFeed(topic, 1, 3); err != nil {
		t.Fatal(err)
	}
	ledger := chaos.NewLedger()
	stop := make(chan struct{})
	wg := startAckedProducers(t, s, topic, 2, ledger, stop)
	awaitAcked(t, ledger, 100, 20*time.Second)

	// Exactly-once boundary: everything acked so far is fully committed
	// and must appear exactly once after the failover. Records acked while
	// the failover is in flight are at-least-once (a retry may double an
	// append whose first response died with the broker).
	ledger.Mark(chaos.PreFaultMark)

	victim := pickVictim(s)
	if victim < 0 {
		t.Fatal("no victim selectable")
	}
	if !s.KillBroker(victim) {
		t.Fatalf("kill broker %d failed", victim)
	}
	// Progress must resume under the new leadership.
	awaitAcked(t, ledger, ledger.Len()+100, 30*time.Second)
	close(stop)
	wg.Wait()

	st, err := s.PartitionState(topic, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Leader == victim {
		t.Fatalf("leadership still on killed broker %d", victim)
	}

	scan, err := chaos.ScanFeed(s.Client(), topic, 1, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	violations := chaos.CheckAckedSurvival(scan, ledger)
	violations = append(violations, chaos.CheckOffsetContiguity(scan)...)
	for _, v := range violations {
		t.Errorf("invariant violated: %s", v)
	}
}

func TestFailoverLeaderKillNoAckedLoss(t *testing.T) {
	runVictimFailover(t, func(s *core.Stack) int32 {
		st, err := s.PartitionState("failover", 0)
		if err != nil {
			return -1
		}
		return st.Leader
	})
}

func TestFailoverControllerKillNoAckedLoss(t *testing.T) {
	runVictimFailover(t, func(s *core.Stack) int32 {
		return s.ControllerID()
	})
}

func TestRestartBrokerRejoinsISR(t *testing.T) {
	s := startFailoverStack(t)
	const topic = "rejoin"
	if err := s.CreateFeed(topic, 1, 3); err != nil {
		t.Fatal(err)
	}
	p := s.NewProducer(client.ProducerConfig{Acks: client.AcksAll})
	defer p.Close()
	if _, err := p.SendSync(client.Message{Topic: topic, Value: []byte("warm")}); err != nil {
		t.Fatal(err)
	}
	st, err := s.PartitionState(topic, 0)
	if err != nil {
		t.Fatal(err)
	}
	var follower int32 = -1
	for _, id := range st.ISR {
		if id != st.Leader {
			follower = id
			break
		}
	}
	if follower < 0 {
		t.Fatal("no follower in ISR")
	}
	s.KillBroker(follower)
	// The dead follower eventually leaves the ISR (controller repair on
	// session expiry), acks=all keeps working meanwhile.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if _, err := p.SendSync(client.Message{Topic: topic, Value: []byte("during")}); err == nil {
			st, _ := s.PartitionState(topic, 0)
			if !st.InISR(follower) {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower %d never left ISR after kill", follower)
		}
		time.Sleep(25 * time.Millisecond)
	}
	// Restart: the broker reopens its logs, truncates to the high
	// watermark, catches up and re-enters the ISR.
	if err := s.RestartBroker(follower); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		st, err := s.PartitionState(topic, 0)
		if err == nil && st.InISR(follower) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted broker %d never rejoined ISR", follower)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestCoordClockInjection proves the stack threads an injected clock into
// the coordination service: session expiry is driven by advancing the fake
// clock, not by waiting wall time.
func TestCoordClockInjection(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	s, err := core.Start(core.Config{Brokers: 1, SessionTimeout: 10 * time.Second, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)

	sid := s.Coord().CreateSession(100 * time.Millisecond)
	if !s.Coord().SessionAlive(sid) {
		t.Fatal("fresh session not alive")
	}
	// Advance past the session timeout but far below the brokers' — only
	// the test session expires, deterministically, with no sleeping.
	advance(200 * time.Millisecond)
	expired := s.Coord().ExpireSessions()
	found := false
	for _, id := range expired {
		if id == sid {
			found = true
		}
	}
	if !found {
		t.Fatalf("expired = %v, want session %d", expired, sid)
	}
	// The stack is unharmed: the broker session survived the advance.
	if err := s.CreateFeed("alive", 1, 1); err != nil {
		t.Fatalf("stack unhealthy after clock advance: %v", err)
	}
}

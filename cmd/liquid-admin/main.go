// Command liquid-admin administers a Liquid cluster: create and delete
// topics, describe cluster metadata, resolve offsets, and query the offset
// manager's annotated checkpoints.
//
// Usage:
//
//	liquid-admin -bootstrap host:port create -topic events -partitions 8 -rf 3
//	liquid-admin -bootstrap host:port create -topic events -tiered -hot-retention-bytes 67108864
//	liquid-admin -bootstrap host:port describe
//	liquid-admin -bootstrap host:port delete -topic events
//	liquid-admin -bootstrap host:port offsets -topic events -partition 0
//	liquid-admin -bootstrap host:port tier ls events
//	liquid-admin -bootstrap host:port create -topic profiles -compacted -table
//	liquid-admin -bootstrap host:port table get profiles -key user-42
//	liquid-admin -bootstrap host:port table range profiles -partition 0 -from a -to z -limit 100
//	liquid-admin -bootstrap host:port table status profiles
//	liquid-admin -bootstrap host:port quota set -principal tenant-a -produce-bps 1048576 -req-rate 100
//	liquid-admin -bootstrap host:port quota ls
//	liquid-admin -bootstrap host:port quota rm -principal tenant-a
//	liquid-admin -bootstrap host:port checkpoint -group job-x -topic events -partition 0 -key version -value v1
//	liquid-admin -bootstrap host:port lag job-x
//	liquid-admin -bootstrap host:port metrics 1
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	liquid "repro"
	"repro/internal/wire"
)

func main() {
	bootstrap := flag.String("bootstrap", "127.0.0.1:9092", "comma-separated broker addresses")
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatal("liquid-admin: need a subcommand: create | delete | describe | offsets | tier | table | quota | checkpoint | lag | metrics")
	}
	cli, err := liquid.NewClient(liquid.ClientConfig{
		Bootstrap: strings.Split(*bootstrap, ","),
		ClientID:  "liquid-admin",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "create":
		runCreate(cli, args)
	case "delete":
		runDelete(cli, args)
	case "describe":
		runDescribe(cli)
	case "offsets":
		runOffsets(cli, args)
	case "tier":
		runTier(cli, args)
	case "table":
		runTable(cli, args)
	case "quota":
		runQuota(cli, args)
	case "checkpoint":
		runCheckpoint(cli, args)
	case "lag":
		runLag(cli, args)
	case "metrics":
		runMetrics(cli, args)
	default:
		log.Fatalf("liquid-admin: unknown subcommand %q", cmd)
	}
}

func runCreate(cli *liquid.Client, args []string) {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	topic := fs.String("topic", "", "topic name")
	partitions := fs.Int("partitions", 1, "partition count")
	rf := fs.Int("rf", 1, "replication factor")
	retentionMs := fs.Int64("retention-ms", 0, "retention in ms (0 = broker default, -1 = unlimited); total horizon on tiered topics")
	segmentBytes := fs.Int("segment-bytes", 0, "segment roll size in bytes (0 = broker default)")
	compacted := fs.Bool("compacted", false, "key-based compaction instead of retention")
	tableFlag := fs.Bool("table", false, "queryable table: partition leaders materialize the compacted feed and serve point reads (requires -compacted)")
	tiered := fs.Bool("tiered", false, "tiered log storage: offload sealed segments to the DFS, serve unbounded rewind")
	hotMs := fs.Int64("hot-retention-ms", 0, "tiered: local (hot) age horizon in ms")
	hotBytes := fs.Int64("hot-retention-bytes", 0, "tiered: local (hot) size horizon in bytes")
	fs.Parse(args)
	if *topic == "" {
		log.Fatal("create: -topic is required")
	}
	err := cli.CreateTopic(liquid.TopicSpec{
		Name:              *topic,
		NumPartitions:     int32(*partitions),
		ReplicationFactor: int16(*rf),
		RetentionMs:       *retentionMs,
		SegmentBytes:      int32(*segmentBytes),
		Compacted:         *compacted,
		Table:             *tableFlag,
		Tiered:            *tiered,
		HotRetentionMs:    *hotMs,
		HotRetentionBytes: *hotBytes,
	})
	if err != nil {
		log.Fatalf("create: %v", err)
	}
	fmt.Printf("created %s (%d partitions, rf %d)\n", *topic, *partitions, *rf)
}

func runDelete(cli *liquid.Client, args []string) {
	fs := flag.NewFlagSet("delete", flag.ExitOnError)
	topic := fs.String("topic", "", "topic name")
	fs.Parse(args)
	if *topic == "" {
		log.Fatal("delete: -topic is required")
	}
	if err := cli.DeleteTopic(*topic); err != nil {
		log.Fatalf("delete: %v", err)
	}
	fmt.Printf("deleted %s\n", *topic)
}

func runDescribe(cli *liquid.Client) {
	brokers, err := cli.Brokers()
	if err != nil {
		log.Fatalf("describe: %v", err)
	}
	fmt.Println("brokers:")
	for _, b := range brokers {
		fmt.Printf("  %d  %s:%d\n", b.ID, b.Host, b.Port)
	}
	if err := cli.RefreshMetadata(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("topics:")
	names, err := topicNames(cli)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range names {
		n, err := cli.PartitionCount(name)
		if err != nil {
			continue
		}
		fmt.Printf("  %s (%d partitions)\n", name, n)
		for p := int32(0); p < n; p++ {
			leader, err := cli.LeaderFor(name, p)
			if err != nil {
				fmt.Printf("    %d: leaderless (%v)\n", p, err)
				continue
			}
			end, _ := cli.ListOffset(name, p, wire.TimestampLatest)
			fmt.Printf("    %d: leader=%d end-offset=%d\n", p, leader, end)
		}
	}
}

// topicNames lists topics from cluster metadata.
func topicNames(cli *liquid.Client) ([]string, error) {
	brokers, err := cli.Brokers()
	if err != nil || len(brokers) == 0 {
		return nil, fmt.Errorf("no brokers: %v", err)
	}
	// The metadata response carries all topics; PartitionCount queries
	// cache it, so enumerate via a fresh metadata round trip.
	return cli.TopicNames()
}

func runOffsets(cli *liquid.Client, args []string) {
	fs := flag.NewFlagSet("offsets", flag.ExitOnError)
	topic := fs.String("topic", "", "topic name")
	partition := fs.Int("partition", 0, "partition")
	fs.Parse(args)
	if *topic == "" {
		log.Fatal("offsets: -topic is required")
	}
	early, err := cli.ListOffset(*topic, int32(*partition), wire.TimestampEarliest)
	if err != nil {
		log.Fatal(err)
	}
	late, err := cli.ListOffset(*topic, int32(*partition), wire.TimestampLatest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s/%d: earliest=%d latest=%d (%d retained)\n", *topic, *partition, early, late, late-early)
}

// runTier handles `tier ls <topic>`: per-partition hot/cold segment
// counts, tiered bytes, and the local vs tiered start offsets, answered by
// each partition's current leader.
func runTier(cli *liquid.Client, args []string) {
	if len(args) < 2 || args[0] != "ls" {
		log.Fatal("tier: usage: tier ls <topic>")
	}
	topic := args[1]
	sts, err := cli.TierStatus(topic)
	if err != nil {
		log.Fatalf("tier ls: %v", err)
	}
	fmt.Printf("%s:\n", topic)
	fmt.Printf("  %-4s %-7s %-9s %-9s %-9s %-10s %-10s %-9s %-12s %s\n",
		"part", "tiered", "earliest", "local-st", "tier-next", "end", "hot-segs", "hot-B", "cold-segs", "cold-B")
	for _, p := range sts {
		fmt.Printf("  %-4d %-7t %-9d %-9d %-9d %-10d %-10d %-9d %-12d %d\n",
			p.Partition, p.Tiered, p.EarliestOffset, p.LocalStartOffset, p.TieredNextOffset,
			p.NextOffset, p.LocalSegments, p.LocalBytes, p.TieredSegments, p.TieredBytes)
	}
}

// runTable handles `table get|range|status <topic>`: point reads, ranged
// scans and per-partition freshness against the queryable view the
// partition leaders materialize from a compacted table feed.
func runTable(cli *liquid.Client, args []string) {
	if len(args) < 2 {
		log.Fatal("table: usage: table get|range|status <topic> [flags]")
	}
	sub, topic, rest := args[0], args[1], args[2:]
	switch sub {
	case "get":
		fs := flag.NewFlagSet("table get", flag.ExitOnError)
		key := fs.String("key", "", "key to look up")
		maxLag := fs.Int64("max-lag", -1, "staleness bound in offsets (hw - applied; -1 = any, 0 = fully caught up)")
		fs.Parse(rest)
		if *key == "" {
			log.Fatal("table get: -key is required")
		}
		router := liquid.NewTableRouter(cli, topic)
		res, err := router.Get([]byte(*key), *maxLag)
		if err != nil {
			log.Fatalf("table get: %v", err)
		}
		p, _ := router.PartitionFor([]byte(*key))
		if !res.Found {
			fmt.Printf("%s[%q]: not found (partition %d, applied=%d hw=%d)\n",
				topic, *key, p, res.AppliedOffset, res.HighWatermark)
			os.Exit(1)
		}
		fmt.Printf("%s[%q] = %q (partition %d, applied=%d hw=%d epoch=%d)\n",
			topic, *key, res.Value, p, res.AppliedOffset, res.HighWatermark, res.LeaderEpoch)
	case "range":
		fs := flag.NewFlagSet("table range", flag.ExitOnError)
		partition := fs.Int("partition", -1, "partition to scan (-1 = all, concatenated in partition order)")
		from := fs.String("from", "", "inclusive lower key bound (empty = start)")
		to := fs.String("to", "", "exclusive upper key bound (empty = end)")
		limit := fs.Int("limit", 100, "max entries to return")
		maxLag := fs.Int64("max-lag", -1, "staleness bound in offsets (-1 = any)")
		fs.Parse(rest)
		var fromB, toB []byte
		if *from != "" {
			fromB = []byte(*from)
		}
		if *to != "" {
			toB = []byte(*to)
		}
		router := liquid.NewTableRouter(cli, topic)
		var results []liquid.TableRangeResult
		if *partition >= 0 {
			res, err := router.RangePartition(int32(*partition), fromB, toB, int32(*limit), *maxLag)
			if err != nil {
				log.Fatalf("table range: %v", err)
			}
			results = append(results, res)
		} else {
			var err error
			results, err = router.RangeAll(fromB, toB, int32(*limit), *maxLag)
			if err != nil {
				log.Fatalf("table range: %v", err)
			}
		}
		n, more := 0, false
		for _, res := range results {
			for _, e := range res.Entries {
				fmt.Printf("%s = %q\n", e.Key, e.Value)
				n++
			}
			more = more || res.More
		}
		fmt.Printf("(%d entries", n)
		if more {
			fmt.Printf("; more available — raise -limit or page with -from past the last key")
		}
		fmt.Println(")")
	case "status":
		sts, err := cli.TableStatus(topic)
		if err != nil {
			log.Fatalf("table status: %v", err)
		}
		fmt.Printf("%s:\n", topic)
		fmt.Printf("  %-4s %-10s %-10s %-10s %-6s %s\n",
			"part", "keys", "applied", "hw", "lag", "epoch")
		for _, p := range sts {
			fmt.Printf("  %-4d %-10d %-10d %-10d %-6d %d\n",
				p.Partition, p.ApproxLen, p.AppliedOffset, p.HighWatermark, p.Lag(), p.LeaderEpoch)
		}
	default:
		log.Fatalf("table: unknown subcommand %q (get | range | status)", sub)
	}
}

// runQuota manages per-principal (client-id) rate quotas: `quota set`
// persists limits cluster-wide (all brokers converge through the
// coordination service and enforce them as ThrottleTimeMs backpressure),
// `quota ls` lists persisted quotas, `quota rm` removes one.
func runQuota(cli *liquid.Client, args []string) {
	if len(args) < 1 {
		log.Fatal("quota: usage: quota set|ls|rm ...")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "set":
		fs := flag.NewFlagSet("quota set", flag.ExitOnError)
		principal := fs.String("principal", "", "client-id the quota applies to")
		produce := fs.Int64("produce-bps", 0, "produce byte-rate limit in bytes/sec (0 = unlimited)")
		fetch := fs.Int64("fetch-bps", 0, "fetch byte-rate limit in bytes/sec (0 = unlimited)")
		reqRate := fs.Int64("req-rate", 0, "request-rate limit in requests/sec (0 = unlimited)")
		fs.Parse(rest)
		if *principal == "" {
			log.Fatal("quota set: -principal is required")
		}
		err := cli.SetQuota(liquid.QuotaEntry{
			Principal:          *principal,
			ProduceBytesPerSec: *produce,
			FetchBytesPerSec:   *fetch,
			RequestsPerSec:     *reqRate,
		})
		if err != nil {
			log.Fatalf("quota set: %v", err)
		}
		fmt.Printf("quota set for %s (produce %d B/s, fetch %d B/s, %d req/s; 0 = unlimited)\n",
			*principal, *produce, *fetch, *reqRate)
	case "ls":
		entries, err := cli.DescribeQuotas(rest...)
		if err != nil {
			log.Fatalf("quota ls: %v", err)
		}
		if len(entries) == 0 {
			fmt.Println("no quotas configured")
			return
		}
		fmt.Printf("%-24s %-14s %-14s %s\n", "principal", "produce-B/s", "fetch-B/s", "req/s")
		for _, e := range entries {
			fmt.Printf("%-24s %-14d %-14d %d\n",
				e.Principal, e.ProduceBytesPerSec, e.FetchBytesPerSec, e.RequestsPerSec)
		}
	case "rm":
		fs := flag.NewFlagSet("quota rm", flag.ExitOnError)
		principal := fs.String("principal", "", "client-id to remove the quota of")
		fs.Parse(rest)
		if *principal == "" {
			log.Fatal("quota rm: -principal is required")
		}
		if err := cli.DeleteQuota(*principal); err != nil {
			log.Fatalf("quota rm: %v", err)
		}
		fmt.Printf("quota removed for %s\n", *principal)
	default:
		log.Fatalf("quota: unknown subcommand %q (set | ls | rm)", sub)
	}
}

func runCheckpoint(cli *liquid.Client, args []string) {
	fs := flag.NewFlagSet("checkpoint", flag.ExitOnError)
	group := fs.String("group", "", "consumer group / job group")
	topic := fs.String("topic", "", "topic name")
	partition := fs.Int("partition", 0, "partition")
	key := fs.String("key", "", "annotation key (e.g. version, @timestamp)")
	value := fs.String("value", "", "annotation value")
	fs.Parse(args)
	if *group == "" || *topic == "" {
		log.Fatal("checkpoint: -group and -topic are required")
	}
	if *key == "" {
		offs, err := cli.FetchOffsets(*group, *topic, []int32{int32(*partition)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s %s/%d: committed=%d\n", *group, *topic, *partition, offs[int32(*partition)])
		return
	}
	off, found, err := cli.QueryOffset(*group, *topic, int32(*partition), *key, *value)
	if err != nil {
		log.Fatal(err)
	}
	if !found {
		fmt.Println("no checkpoint matches")
		os.Exit(1)
	}
	fmt.Printf("%s %s/%d: offset=%d for %s=%s\n", *group, *topic, *partition, off, *key, *value)
}

// runLag handles `lag <group>`: the group's committed offset vs the latest
// offset on every partition it has checkpointed, via the offset-fetch and
// list-offsets APIs (no ops server needed).
func runLag(cli *liquid.Client, args []string) {
	if len(args) < 1 {
		log.Fatal("lag: usage: lag <group>")
	}
	group := args[0]
	entries, err := cli.GroupLag(group)
	if err != nil {
		log.Fatalf("lag: %v", err)
	}
	if len(entries) == 0 {
		fmt.Printf("group %q has no committed offsets\n", group)
		return
	}
	fmt.Printf("%s:\n", group)
	fmt.Printf("  %-24s %-5s %-12s %-12s %s\n", "topic", "part", "committed", "end", "lag")
	var total int64
	for _, e := range entries {
		fmt.Printf("  %-24s %-5d %-12d %-12d %d\n", e.Topic, e.Partition, e.Committed, e.HighWatermark, e.Lag)
		total += e.Lag
	}
	fmt.Printf("  total lag: %d\n", total)
}

// runMetrics handles `metrics <broker-id>`: resolves the broker's
// advertised ops address from cluster metadata and dumps its /metrics
// exposition. With no argument it lists every broker's ops address.
func runMetrics(cli *liquid.Client, args []string) {
	brokers, err := cli.Brokers()
	if err != nil {
		log.Fatalf("metrics: %v", err)
	}
	if len(args) < 1 {
		for _, b := range brokers {
			addr := b.OpsAddr
			if addr == "" {
				addr = "(no ops server)"
			}
			fmt.Printf("broker %d: %s\n", b.ID, addr)
		}
		return
	}
	id, err := strconv.Atoi(args[0])
	if err != nil {
		log.Fatalf("metrics: broker id must be an integer: %v", err)
	}
	var opsAddr string
	for _, b := range brokers {
		if b.ID == int32(id) {
			opsAddr = b.OpsAddr
			break
		}
	}
	if opsAddr == "" {
		log.Fatalf("metrics: broker %d not found or has no ops server", id)
	}
	resp, err := http.Get("http://" + opsAddr + "/metrics")
	if err != nil {
		log.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("metrics: %s returned %s", opsAddr, resp.Status)
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		log.Fatal(err)
	}
}

// Command liquid-producer is a console producer: it reads lines from
// standard input and publishes them to a topic. A line of the form
// "key<TAB>value" produces a keyed message; otherwise the whole line is the
// value.
//
// Usage:
//
//	echo "hello" | liquid-producer -bootstrap host:port -topic events
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	liquid "repro"
)

func main() {
	bootstrap := flag.String("bootstrap", "127.0.0.1:9092", "comma-separated broker addresses")
	topic := flag.String("topic", "", "topic to produce to")
	acks := flag.Int("acks", 1, "durability: 0 fire-and-forget, 1 leader, -1 all in-sync replicas")
	codecName := flag.String("codec", "none", "batch compression: none, gzip, or flate")
	flag.Parse()
	if *topic == "" {
		log.Fatal("liquid-producer: -topic is required")
	}
	codec, err := liquid.ParseCodec(*codecName)
	if err != nil {
		log.Fatalf("liquid-producer: %v", err)
	}
	cli, err := liquid.NewClient(liquid.ClientConfig{
		Bootstrap: strings.Split(*bootstrap, ","),
		ClientID:  "liquid-producer",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	ackLevel := int16(*acks)
	if *acks == 0 {
		ackLevel = liquid.AcksNone
	}
	producer := liquid.NewProducer(cli, liquid.ProducerConfig{Acks: ackLevel, Codec: codec})
	defer producer.Close()

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	sent := 0
	for scanner.Scan() {
		line := scanner.Text()
		msg := liquid.Message{Topic: *topic}
		if key, value, found := strings.Cut(line, "\t"); found {
			msg.Key = []byte(key)
			msg.Value = []byte(value)
		} else {
			msg.Value = []byte(line)
		}
		if err := producer.Send(msg); err != nil {
			log.Fatalf("send: %v", err)
		}
		sent++
	}
	if err := scanner.Err(); err != nil {
		log.Fatalf("stdin: %v", err)
	}
	if err := producer.Flush(); err != nil {
		log.Fatalf("flush: %v", err)
	}
	fmt.Fprintf(os.Stderr, "produced %d message(s) to %s\n", sent, *topic)
}

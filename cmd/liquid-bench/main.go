// Command liquid-bench runs the experiment suite that reproduces the
// paper's claims (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded results). Each experiment prints a table;
// absolute numbers are machine-dependent, the shapes are the reproduction
// target.
//
// Usage:
//
//	liquid-bench            # run everything at full scale
//	liquid-bench -quick     # CI-sized runs
//	liquid-bench -run E7    # one experiment
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sizes (seconds per experiment)")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	flag.Parse()

	scale := bench.Scale{Quick: *quick}
	start := time.Now()
	var tables []bench.Table
	if *run == "" {
		tables = bench.All(scale)
	} else {
		for _, id := range strings.Split(*run, ",") {
			f, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				log.Fatalf("liquid-bench: unknown experiment %q (E1..E13)", id)
			}
			tables = append(tables, f(scale))
		}
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Second))
}

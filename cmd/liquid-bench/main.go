// Command liquid-bench runs the experiment suite that reproduces the
// paper's claims (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded results). Each experiment prints a table;
// absolute numbers are machine-dependent, the shapes are the reproduction
// target.
//
// Every experiment also writes a machine-readable BENCH_<exp>.json file
// (identity, structured results, rendered rows) so the performance
// trajectory can be tracked across changes; -json "" disables it.
//
// Usage:
//
//	liquid-bench              # run everything at full scale
//	liquid-bench -quick       # CI-sized runs
//	liquid-bench -run E16     # one experiment
//	liquid-bench -json out/   # write BENCH_<exp>.json files into out/
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sizes (seconds per experiment)")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	jsonDir := flag.String("json", ".", "directory for BENCH_<exp>.json results (empty disables)")
	flag.Parse()

	// Quick runs don't overwrite committed full-scale baselines unless the
	// caller asked for JSON explicitly (the files record their scale either
	// way).
	jsonExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "json" {
			jsonExplicit = true
		}
	})
	if *quick && !jsonExplicit {
		*jsonDir = ""
	}

	scale := bench.Scale{Quick: *quick}
	start := time.Now()
	var tables []bench.Table
	if *run == "" {
		tables = bench.All(scale)
	} else {
		for _, id := range strings.Split(*run, ",") {
			f, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				log.Fatalf("liquid-bench: unknown experiment %q (E1..E20, E22, E24)", id)
			}
			tables = append(tables, f(scale))
		}
	}
	for _, t := range tables {
		fmt.Println(t.Render())
		if *jsonDir != "" {
			path, err := bench.WriteJSON(*jsonDir, t, scale)
			if err != nil {
				log.Printf("liquid-bench: write json for %s: %v", t.ID, err)
			} else {
				fmt.Printf("wrote %s\n\n", path)
			}
		}
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Second))
}

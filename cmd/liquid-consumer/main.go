// Command liquid-consumer is a console consumer: it subscribes to a topic
// (optionally as part of a consumer group) and prints messages as
// "partition@offset key value" lines until interrupted.
//
// Usage:
//
//	liquid-consumer -bootstrap host:port -topic events -from earliest
//	liquid-consumer -bootstrap host:port -topic events -group dashboard
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	liquid "repro"
)

func main() {
	bootstrap := flag.String("bootstrap", "127.0.0.1:9092", "comma-separated broker addresses")
	topic := flag.String("topic", "", "topic to consume")
	group := flag.String("group", "", "consumer group (empty = standalone, all partitions)")
	from := flag.String("from", "latest", "start position: earliest | latest")
	flag.Parse()
	if *topic == "" {
		log.Fatal("liquid-consumer: -topic is required")
	}
	cli, err := liquid.NewClient(liquid.ClientConfig{
		Bootstrap: strings.Split(*bootstrap, ","),
		ClientID:  "liquid-consumer",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	start := liquid.StartLatest
	if *from == "earliest" {
		start = liquid.StartEarliest
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	poll := func(time.Duration) ([]liquid.Message, error) { return nil, nil }
	if *group == "" {
		consumer := liquid.NewConsumer(cli, liquid.ConsumerConfig{})
		defer consumer.Close()
		n, err := cli.PartitionCount(*topic)
		if err != nil {
			log.Fatal(err)
		}
		for p := int32(0); p < n; p++ {
			if err := consumer.Assign(*topic, p, start); err != nil {
				log.Fatal(err)
			}
		}
		poll = consumer.Poll
	} else {
		gc, err := liquid.NewGroupConsumer(cli, liquid.ConsumerConfig{}, liquid.GroupConfig{
			Group:      *group,
			Topics:     []string{*topic},
			AutoCommit: true,
			StartFrom:  start,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer gc.Close()
		poll = gc.Poll
	}

	for {
		select {
		case <-stop:
			return
		default:
		}
		msgs, err := poll(500 * time.Millisecond)
		if err != nil {
			continue
		}
		for _, m := range msgs {
			fmt.Printf("%d@%d\t%s\t%s\n", m.Partition, m.Offset, m.Key, m.Value)
		}
	}
}

// Command liquid-broker runs a Liquid messaging-layer cluster (brokers +
// coordination service) in one process and serves the binary protocol over
// TCP until interrupted. Clients (liquid-producer, liquid-consumer,
// liquid-admin, or any program using the library) connect to the printed
// bootstrap addresses.
//
// Usage:
//
//	liquid-broker -brokers 3 -data /var/lib/liquid
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	liquid "repro"
)

func main() {
	brokers := flag.Int("brokers", 1, "number of brokers in the cluster")
	dataDir := flag.String("data", "", "data directory (default: temp, removed on exit)")
	retention := flag.Duration("retention-interval", 30*time.Second, "how often log retention runs")
	compaction := flag.Duration("compaction-interval", time.Minute, "how often compacted topics are cleaned")
	opsAddr := flag.String("ops", "", "per-broker ops HTTP listen address (/metrics, /healthz, /status, pprof); use 127.0.0.1:0 for ephemeral ports, empty disables")
	verbose := flag.Bool("v", false, "verbose logging")
	flag.Parse()

	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	stack, err := liquid.Start(liquid.Config{
		Brokers:            *brokers,
		DataDir:            *dataDir,
		RetentionInterval:  *retention,
		CompactionInterval: *compaction,
		OpsAddr:            *opsAddr,
		Logger:             logger,
	})
	if err != nil {
		log.Fatalf("liquid-broker: %v", err)
	}
	defer stack.Shutdown()

	fmt.Printf("liquid cluster up: %d broker(s)\n", *brokers)
	fmt.Printf("bootstrap: %s\n", strings.Join(stack.Addrs(), ","))
	fmt.Printf("data: %s\n", stack.DataDir())
	if *opsAddr != "" {
		fmt.Printf("ops: %s\n", strings.Join(stack.OpsAddrs(), ","))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down")
}

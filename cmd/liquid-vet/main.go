// liquid-vet is the repo's custom static-analysis suite: five analyzers
// that machine-enforce correctness invariants the stack depends on (lock
// discipline, wire exhaustiveness, tmp+sync+rename commits, sync.Pool
// pairing, injectable-clock discipline). See docs/INVARIANTS.md.
//
// Usage:
//
//	liquid-vet ./...                      # standalone, exit 1 on findings
//	liquid-vet -only clockdiscipline ./internal/broker
//	go vet -vettool=$(which liquid-vet) ./...
package main

import (
	"repro/internal/lint/clockdiscipline"
	"repro/internal/lint/commitdiscipline"
	"repro/internal/lint/lockguard"
	"repro/internal/lint/multichecker"
	"repro/internal/lint/poolcheck"
	"repro/internal/lint/wireclass"
)

func main() {
	multichecker.Main(
		lockguard.Analyzer,
		wireclass.Analyzer,
		commitdiscipline.Analyzer,
		poolcheck.Analyzer,
		clockdiscipline.Analyzer,
	)
}

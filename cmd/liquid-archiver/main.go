// Command liquid-archiver operates the feed→DFS archival bridge against a
// running cluster: stream a feed into archived segments, take a one-shot
// snapshot, inspect the archive, or backfill archived segments into a feed.
//
// Usage:
//
//	liquid-archiver -bootstrap host:port -dir /data/archive -topic events run
//	liquid-archiver -bootstrap host:port -dir /data/archive -topic events snapshot
//	liquid-archiver -dir /data/archive -topic events ls
//	liquid-archiver -bootstrap host:port -dir /data/archive -topic events -target events-replay -rate 1000 backfill
//
// The archive tree lives on a DFS backed by -dir; -root scopes it inside
// the tree (default /archive), so several feeds can share one directory.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	liquid "repro"
)

func main() {
	bootstrap := flag.String("bootstrap", "127.0.0.1:9092", "comma-separated broker addresses")
	dir := flag.String("dir", "", "local directory backing the archive file system")
	root := flag.String("root", "/archive", "archive root inside the file system")
	topic := flag.String("topic", "", "feed to archive / backfill from")
	name := flag.String("name", "", "archiver name (scopes the consumer group; default = topic)")
	target := flag.String("target", "", "backfill destination feed")
	partition := flag.Int("partition", -1, "backfill a single archived partition (-1 = all)")
	rate := flag.Int("rate", 0, "backfill rate cap in records/sec (0 = unlimited)")
	segBytes := flag.Int64("segment-bytes", 4<<20, "segment roll size")
	flushEvery := flag.Duration("flush-interval", 2*time.Second, "max age of an open segment buffer")
	codecName := flag.String("codec", "none", "segment compression on the DFS: none, gzip, or flate")
	flag.Parse()
	mode := flag.Arg(0)
	codec, err := liquid.ParseCodec(*codecName)
	if err != nil {
		log.Fatalf("liquid-archiver: %v", err)
	}
	if mode == "" {
		mode = "run"
	}
	if *dir == "" {
		log.Fatal("liquid-archiver: -dir is required")
	}
	if *topic == "" {
		log.Fatal("liquid-archiver: -topic is required")
	}
	// Readers open lock-free so they can run alongside a live archiver;
	// writers take the directory lock.
	openFS := liquid.OpenArchiveFS
	if mode == "ls" || mode == "backfill" {
		openFS = liquid.OpenArchiveFSReadOnly
	}
	fs, err := openFS(*dir)
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	newClient := func() *liquid.Client {
		cli, err := liquid.NewClient(liquid.ClientConfig{
			Bootstrap: strings.Split(*bootstrap, ","),
			ClientID:  "liquid-archiver",
		})
		if err != nil {
			log.Fatal(err)
		}
		return cli
	}

	switch mode {
	case "run":
		cli := newClient()
		defer cli.Close()
		a, err := liquid.NewArchiver(cli, liquid.ArchiverConfig{
			Topic:         *topic,
			Name:          *name,
			FS:            fs,
			Root:          *root,
			SegmentBytes:  *segBytes,
			FlushInterval: *flushEvery,
			Codec:         codec,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := a.Start(); err != nil {
			log.Fatal(err)
		}
		log.Printf("archiving %s into %s%s as group %s; ctrl-c to stop", *topic, *dir, *root, a.Group())
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		tick := time.NewTicker(10 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				if err := a.Stop(); err != nil {
					log.Fatal(err)
				}
				st := a.Stats()
				log.Printf("stopped: %d records, %d segments, %d bytes", st.Records, st.Segments, st.Bytes)
				return
			case <-tick.C:
				st := a.Stats()
				log.Printf("progress: %d records, %d segments, %d bytes, %d partitions",
					st.Records, st.Segments, st.Bytes, st.Partitions)
			}
		}

	case "snapshot":
		cli := newClient()
		defer cli.Close()
		stats, err := liquid.ArchiveSnapshot(cli, liquid.SnapshotConfig{
			Topic:        *topic,
			Name:         *name,
			FS:           fs,
			Root:         *root,
			SegmentBytes: *segBytes,
			Codec:        codec,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot of %s: %d records, %d segments, %d bytes across %d partitions\n",
			*topic, stats.Records, stats.Segments, stats.Bytes, stats.Partitions)

	case "ls":
		manifests, err := liquid.ArchiveManifests(fs, *root, *topic)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range manifests {
			fmt.Printf("%s/%d: %d segments, %d records, %d bytes, next offset %d\n",
				m.Topic, m.Partition, len(m.Segments), m.Records(), m.Bytes(), m.NextOffset)
			for _, seg := range m.Segments {
				fmt.Printf("  %s offsets [%d,%d] %d records %d bytes\n",
					seg.Path, seg.BaseOffset, seg.LastOffset, seg.Records, seg.Bytes)
			}
		}

	case "backfill":
		if *target == "" {
			log.Fatal("liquid-archiver: backfill requires -target")
		}
		cli := newClient()
		defer cli.Close()
		var parts []int32
		if *partition >= 0 {
			parts = []int32{int32(*partition)}
		}
		stats, err := liquid.Backfill(cli, liquid.BackfillConfig{
			FS:                 fs,
			Root:               *root,
			SourceTopic:        *topic,
			Partitions:         parts,
			TargetTopic:        *target,
			PreservePartitions: true,
			RecordsPerSec:      *rate,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("backfill %s -> %s: %d records, %d segments republished, %d skipped, in %v\n",
			*topic, *target, stats.Records, stats.Segments, stats.SkippedSegments, stats.Duration)

	default:
		log.Fatalf("liquid-archiver: unknown mode %q (run | snapshot | ls | backfill)", mode)
	}
}

// Callgraph reproduces the paper's "call graph assembly" use case (§5.1):
// every REST call of a page view is logged to the messaging layer with a
// shared request id; a processing-layer job buffers spans per request,
// assembles completed call trees, and publishes them to a derived feed
// within seconds — where the pre-Liquid batch pipeline assembled graphs
// from DFS logs hours after the fact. A monitoring consumer reads the
// assembled graphs and pinpoints the slowest service.
//
// Paper experiment: the seconds-not-hours claim behind this pipeline is
// quantified by E1 (pipeline latency) and the §5.1 use-case run E12.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"time"

	liquid "repro"
	"repro/internal/workload"
)

// trace is an assembled call graph.
type trace struct {
	RequestID string               `json:"reqId"`
	Spans     []workload.CallEvent `json:"spans"`
	TotalMs   int64                `json:"totalMs"`
	Critical  string               `json:"slowestService"`
}

// assembleTask buffers spans per request id and emits a request's tree
// once no new span has arrived for a settle window.
type assembleTask struct {
	pending  map[string][]workload.CallEvent
	lastSeen map[string]time.Time
}

func (t *assembleTask) Init(*liquid.TaskContext) error {
	t.pending = make(map[string][]workload.CallEvent)
	t.lastSeen = make(map[string]time.Time)
	return nil
}

func (t *assembleTask) Process(msg liquid.Message, _ *liquid.TaskContext, _ *liquid.Collector) error {
	ev, err := workload.DecodeCall(msg.Value)
	if err != nil {
		return nil
	}
	t.pending[ev.RequestID] = append(t.pending[ev.RequestID], ev)
	t.lastSeen[ev.RequestID] = time.Now()
	return nil
}

func (t *assembleTask) Window(_ *liquid.TaskContext, out *liquid.Collector) error {
	settle := 200 * time.Millisecond
	now := time.Now()
	for reqID, spans := range t.pending {
		if now.Sub(t.lastSeen[reqID]) < settle {
			continue
		}
		tr := trace{RequestID: reqID, Spans: spans}
		var worst int64 = -1
		for _, s := range spans {
			tr.TotalMs += s.DurMs
			if s.DurMs > worst {
				worst = s.DurMs
				tr.Critical = s.Service
			}
		}
		b, _ := json.Marshal(tr)
		if err := out.Send("call-graphs", []byte(reqID), b); err != nil {
			return err
		}
		delete(t.pending, reqID)
		delete(t.lastSeen, reqID)
	}
	return nil
}

func main() {
	stack, err := liquid.Start(liquid.Config{Brokers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Shutdown()
	for _, feed := range []string{"rest-calls", "call-graphs"} {
		if err := stack.CreateFeed(feed, 4, 1); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := stack.RunJob(liquid.JobConfig{
		Name:           "assembler",
		Inputs:         []string{"rest-calls"},
		Factory:        func() liquid.StreamTask { return &assembleTask{} },
		WindowInterval: 100 * time.Millisecond,
		PollWait:       50 * time.Millisecond,
	}); err != nil {
		log.Fatal(err)
	}

	// Front-end machines log REST calls; graph-svc is misbehaving.
	gen := workload.NewCallGraph(workload.CallGraphConfig{
		Seed:        7,
		FanOut:      3,
		MaxDepth:    3,
		SlowService: "graph-svc",
	}, time.Now().UnixMilli())
	producer := stack.NewProducer(liquid.ProducerConfig{})
	defer producer.Close()
	rng := rand.New(rand.NewSource(1))
	const totalTraces = 50
	for i := 0; i < totalTraces; i++ {
		spans := gen.NextTrace()
		// Spans arrive interleaved and out of order in production.
		rng.Shuffle(len(spans), func(a, b int) { spans[a], spans[b] = spans[b], spans[a] })
		for _, s := range spans {
			// Keyed by request id: all spans of a request land in one
			// partition, so one task sees the whole tree.
			producer.Send(liquid.Message{
				Topic: "rest-calls",
				Key:   []byte(s.RequestID),
				Value: s.Encode(),
			})
		}
	}
	if err := producer.Flush(); err != nil {
		log.Fatal(err)
	}
	ingestDone := time.Now()

	// Monitoring reads assembled graphs from the derived feed.
	consumer := stack.NewConsumer(liquid.ConsumerConfig{})
	defer consumer.Close()
	for p := int32(0); p < 4; p++ {
		consumer.Assign("call-graphs", p, liquid.StartEarliest)
	}
	slowest := map[string]int{}
	assembled := 0
	deadline := time.Now().Add(30 * time.Second)
	for assembled < totalTraces && time.Now().Before(deadline) {
		msgs, err := consumer.Poll(200 * time.Millisecond)
		if err != nil {
			continue
		}
		for _, m := range msgs {
			var tr trace
			if json.Unmarshal(m.Value, &tr) != nil {
				continue
			}
			assembled++
			slowest[tr.Critical]++
		}
	}
	if assembled < totalTraces {
		log.Fatalf("assembled %d/%d traces", assembled, totalTraces)
	}
	fmt.Printf("assembled %d call graphs %.1fs after ingest finished\n",
		assembled, time.Since(ingestDone).Seconds())
	fmt.Println("slowest service per request:")
	for svc, n := range slowest {
		fmt.Printf("  %-12s critical in %d requests\n", svc, n)
	}
	if slowest["graph-svc"] > totalTraces/4 {
		fmt.Println("diagnosis: graph-svc is degrading page builds -> page the graph-svc oncall")
	}
}

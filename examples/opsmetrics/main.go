// Opsmetrics: boot a Liquid stack with the per-broker ops plane enabled,
// run a small produce/consume workload, then scrape each broker's
// /metrics endpoint like a monitoring system would — lint the exposition,
// print the headline request-path series, and show the consumer-lag
// gauges a dashboard alert would key on.
//
// Paper experiment: the cost of this instrumentation is quantified by E25
// (go run ./cmd/liquid-bench -run E25).
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"time"

	liquid "repro"
	"repro/internal/obs"
)

func main() {
	// OpsAddr gives every broker its own HTTP ops server: ":0" picks an
	// ephemeral port per broker, read back via stack.OpsAddrs().
	stack, err := liquid.Start(liquid.Config{Brokers: 3, OpsAddr: "127.0.0.1:0"})
	if err != nil {
		log.Fatalf("start stack: %v", err)
	}
	defer stack.Shutdown()

	if err := stack.CreateFeed("events", 2, 3); err != nil {
		log.Fatalf("create feed: %v", err)
	}

	// A little traffic so the request-path families have something to say.
	p := stack.NewProducer(liquid.ProducerConfig{})
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("user-%d", i%17))
		if _, err := p.SendSync(liquid.Message{Topic: "events", Key: key, Value: []byte("click")}); err != nil {
			log.Fatalf("produce: %v", err)
		}
	}
	p.Close()

	c := stack.NewConsumer(liquid.ConsumerConfig{})
	for part := int32(0); part < 2; part++ {
		if err := c.Assign("events", part, liquid.StartEarliest); err != nil {
			log.Fatalf("assign: %v", err)
		}
	}
	seen := 0
	for deadline := time.Now().Add(10 * time.Second); seen < 500 && time.Now().Before(deadline); {
		msgs, err := c.Poll(200 * time.Millisecond)
		if err != nil {
			log.Fatalf("poll: %v", err)
		}
		seen += len(msgs)
	}
	c.Close()
	fmt.Printf("produced 500, consumed %d\n\n", seen)

	// A group parked at offset 0 is maximally behind — its lag shows up
	// on the coordinator's gauge within one exporter tick (1s).
	cli := stack.Client()
	if err := cli.CommitOffsets("dashboard", map[string]map[int32]int64{"events": {0: 0, 1: 0}}, nil); err != nil {
		log.Fatalf("commit: %v", err)
	}
	time.Sleep(1500 * time.Millisecond)

	// Scrape every broker the way Prometheus would, and hold each body to
	// the exposition-format rules (typed families, unique series, monotone
	// histogram buckets).
	for i, addr := range stack.OpsAddrs() {
		body, err := scrape(addr)
		if err != nil {
			log.Fatalf("scrape broker %d: %v", i+1, err)
		}
		samples, err := obs.LintExposition(body)
		if err != nil {
			log.Fatalf("broker %d exposition not lint-clean: %v", i+1, err)
		}
		fmt.Printf("broker %d (%s): %d samples, lint-clean\n", i+1, addr, len(samples))
		for _, s := range samples {
			switch {
			case s.Name == "broker_api_requests" && s.Label("api") == "produce",
				s.Name == "broker_api_requests" && s.Label("api") == "fetch",
				s.Name == "broker_group_lag" && s.Label("group") == "dashboard":
				fmt.Printf("  %s%s %g\n", s.Name, formatLabels(s.Labels), s.Value)
			}
		}
	}

	// The same lag, through the admin client (what `liquid-admin lag`
	// prints).
	entries, err := cli.GroupLag("dashboard")
	if err != nil {
		log.Fatalf("group lag: %v", err)
	}
	fmt.Println("\nconsumer lag for group \"dashboard\":")
	for _, e := range entries {
		fmt.Printf("  %s/%d committed=%d end=%d lag=%d\n",
			e.Topic, e.Partition, e.Committed, e.HighWatermark, e.Lag)
	}
}

// formatLabels renders a label map in exposition style, sorted for stable
// output.
func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := "{"
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", k, labels[k])
	}
	return out + "}"
}

func scrape(addr string) ([]byte, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// Quickstart: boot a Liquid stack, publish events to a feed, run a
// stateful processing job that counts events per user, and read the
// derived feed — the minimal end-to-end tour of both layers.
//
// Paper experiment: the latency of this produce→process→consume shape is
// quantified by E1 (go run ./cmd/liquid-bench -run E1).
package main

import (
	"fmt"
	"log"
	"strconv"
	"time"

	liquid "repro"
)

// countTask counts messages per key into the "counts" store and emits the
// running total to the "totals" feed.
type countTask struct{}

func (countTask) Process(msg liquid.Message, ctx *liquid.TaskContext, out *liquid.Collector) error {
	store := ctx.Store("counts")
	n := 0
	if v, ok, err := store.Get(msg.Key); err != nil {
		return err
	} else if ok {
		n, _ = strconv.Atoi(string(v))
	}
	n++
	if err := store.Put(msg.Key, []byte(strconv.Itoa(n))); err != nil {
		return err
	}
	return out.Send("totals", msg.Key, []byte(strconv.Itoa(n)))
}

func main() {
	stack, err := liquid.Start(liquid.Config{Brokers: 1})
	if err != nil {
		log.Fatalf("start stack: %v", err)
	}
	defer stack.Shutdown()

	// Source-of-truth feed and derived feed (paper §3).
	for _, feed := range []string{"events", "totals"} {
		if err := stack.CreateFeed(feed, 2, 1); err != nil {
			log.Fatalf("create feed %s: %v", feed, err)
		}
	}

	// A stateful ETL job on the processing layer.
	if _, err := stack.RunJob(liquid.JobConfig{
		Name:    "counter",
		Inputs:  []string{"events"},
		Factory: func() liquid.StreamTask { return countTask{} },
		Stores:  []liquid.StoreSpec{{Name: "counts"}},
	}); err != nil {
		log.Fatalf("run job: %v", err)
	}

	// Publish keyed events.
	producer := stack.NewProducer(liquid.ProducerConfig{})
	defer producer.Close()
	users := []string{"alice", "bob", "carol"}
	for i := 0; i < 12; i++ {
		user := users[i%len(users)]
		err := producer.Send(liquid.Message{
			Topic: "events",
			Key:   []byte(user),
			Value: []byte(fmt.Sprintf("click-%d", i)),
		})
		if err != nil {
			log.Fatalf("send: %v", err)
		}
	}
	if err := producer.Flush(); err != nil {
		log.Fatalf("flush: %v", err)
	}

	// Subscribe to the derived feed and watch totals arrive.
	consumer := stack.NewConsumer(liquid.ConsumerConfig{})
	defer consumer.Close()
	for p := int32(0); p < 2; p++ {
		if err := consumer.Assign("totals", p, liquid.StartEarliest); err != nil {
			log.Fatalf("assign: %v", err)
		}
	}
	final := map[string]string{}
	deadline := time.Now().Add(10 * time.Second)
	for len(final) < 3 || final["alice"] != "4" {
		if time.Now().After(deadline) {
			log.Fatalf("timed out; totals so far: %v", final)
		}
		msgs, err := consumer.Poll(200 * time.Millisecond)
		if err != nil {
			continue
		}
		for _, m := range msgs {
			final[string(m.Key)] = string(m.Value)
			fmt.Printf("totals: %s = %s (lineage %s)\n", m.Key, m.Value, lineage(m))
		}
	}
	fmt.Printf("final counts: %v\n", final)
}

// lineage extracts the producing job from the message's lineage header.
func lineage(m liquid.Message) string {
	for _, h := range m.Headers {
		if h.Key == "liquid.lineage" {
			return string(h.Value)
		}
	}
	return "unknown"
}

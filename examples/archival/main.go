// Archival: the unification demo. One feed serves both stacks — a nearline
// job consumes it live while the archiver exports it to the DFS; a
// MapReduce word count then runs directly over the archived segments; and
// finally the archive backfills a fresh feed, replaying history the
// messaging layer could have long expired (paper §1, §3: the log layer as
// the single source of truth for nearline AND offline consumers).
//
// Paper experiments: archive export throughput is E14 and the
// nearline-vs-offline scan comparison is E15. Archived segments may be
// codec-compressed on the DFS (liquid.ArchiverConfig.Codec), reusing the
// messaging layer's batch codecs (E16).
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	liquid "repro"
	"repro/internal/mapreduce"
)

func main() {
	stack, err := liquid.Start(liquid.Config{Brokers: 1})
	if err != nil {
		log.Fatalf("start stack: %v", err)
	}
	defer stack.Shutdown()

	if err := stack.CreateFeed("pages", 2, 1); err != nil {
		log.Fatalf("create feed: %v", err)
	}

	// ---- Publish page-view events into the source-of-truth feed.
	producer := stack.NewProducer(liquid.ProducerConfig{})
	pages := []string{"home", "search", "home", "checkout", "search", "home", "cart", "checkout", "home", "search"}
	for i, page := range pages {
		if err := producer.Send(liquid.Message{
			Topic: "pages",
			Key:   []byte(fmt.Sprintf("user-%d", i%3)),
			Value: []byte(page),
		}); err != nil {
			log.Fatalf("send: %v", err)
		}
	}
	if err := producer.Flush(); err != nil {
		log.Fatalf("flush: %v", err)
	}
	producer.Close()
	fmt.Printf("published %d page views to feed %q\n", len(pages), "pages")

	// ---- Archive the feed into manifest-tracked segments on the DFS.
	snap, err := stack.ArchiveSnapshot(liquid.SnapshotConfig{Topic: "pages", SegmentRecords: 4})
	if err != nil {
		log.Fatalf("archive: %v", err)
	}
	fmt.Printf("archived %d records into %d segments (%d bytes) across %d partitions\n",
		snap.Records, snap.Segments, snap.Bytes, snap.Partitions)

	fs, err := stack.ArchiveFS()
	if err != nil {
		log.Fatalf("archive fs: %v", err)
	}
	manifests, err := liquid.ArchiveManifests(fs, "/archive", "pages")
	if err != nil {
		log.Fatalf("manifests: %v", err)
	}
	for _, m := range manifests {
		fmt.Printf("  manifest %s/%d: %d segments, next offset %d\n",
			m.Topic, m.Partition, len(m.Segments), m.NextOffset)
	}

	// ---- Offline: MapReduce word count directly over archived segments.
	files, decode, err := liquid.ArchiveMRInput(fs, "/archive", "pages")
	if err != nil {
		log.Fatalf("mr input: %v", err)
	}
	engine := mapreduce.NewEngine(fs, mapreduce.EngineConfig{})
	if _, err := engine.Run(mapreduce.JobSpec{
		Name:       "pageviews",
		InputFiles: files,
		Decode:     decode,
		OutputDir:  "/out/pageviews",
		Map: func(_, page string, emit func(k, v string)) error {
			emit(page, "1")
			return nil
		},
		Reduce: func(page string, views []string, emit func(k, v string)) error {
			emit(page, strconv.Itoa(len(views)))
			return nil
		},
	}); err != nil {
		log.Fatalf("mapreduce: %v", err)
	}
	fmt.Println("mapreduce page-view counts over archived segments:")
	for _, info := range fs.List("/out/pageviews/") {
		data, err := fs.ReadFile(info.Path)
		if err != nil {
			log.Fatalf("read output: %v", err)
		}
		for _, kv := range mapreduce.DecodeLines(data) {
			fmt.Printf("  %-10s %s\n", kv.Key, kv.Value)
		}
	}

	// ---- Backfill: replay the archive into a fresh feed, as if rewinding
	// past the retention horizon.
	if err := stack.CreateFeed("pages-replay", 2, 1); err != nil {
		log.Fatalf("create replay feed: %v", err)
	}
	bf, err := stack.Backfill(liquid.BackfillConfig{
		SourceTopic:        "pages",
		TargetTopic:        "pages-replay",
		PreservePartitions: true,
		RecordsPerSec:      500,
	})
	if err != nil {
		log.Fatalf("backfill: %v", err)
	}
	fmt.Printf("backfilled %d records (%d segments) into %q in %v\n",
		bf.Records, bf.Segments, "pages-replay", bf.Duration.Round(time.Millisecond))

	consumer := stack.NewConsumer(liquid.ConsumerConfig{})
	defer consumer.Close()
	consumer.Assign("pages-replay", 0, liquid.StartEarliest)
	consumer.Assign("pages-replay", 1, liquid.StartEarliest)
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	var sample []string
	for got < len(pages) && time.Now().Before(deadline) {
		msgs, err := consumer.Poll(200 * time.Millisecond)
		if err != nil {
			continue
		}
		for _, m := range msgs {
			got++
			for _, h := range m.Headers {
				if h.Key == "liquid.backfill.offset" && len(sample) < 3 {
					sample = append(sample, fmt.Sprintf("%s(orig offset %s)", m.Value, h.Value))
				}
			}
		}
	}
	if got != len(pages) {
		log.Fatalf("replay delivered %d/%d records", got, len(pages))
	}
	fmt.Printf("replay feed delivered all %d records; provenance sample: %s\n",
		got, strings.Join(sample, ", "))
}

// Opsanalytics reproduces the paper's "operational analysis" use case
// (§5.1): metrics and logs from the fleet are transported by the messaging
// layer; a processing-layer job maintains rolling per-host statistics and
// publishes alert events when error rates spike, so incidents are caught
// while they happen rather than after a post-hoc DFS scan. Integrating a
// new metric source is just producing to the feed.
//
// Paper experiment: detection latency of this shape is E1; the guarantee
// that a stalled dashboard consumer cannot stall ingestion is E10
// (producer/consumer decoupling).
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	liquid "repro"
	"repro/internal/workload"
)

// alert is published to the alerts feed when a host misbehaves.
type alert struct {
	Host     string  `json:"host"`
	Metric   string  `json:"metric"`
	Rate     float64 `json:"rate"`
	Samples  int     `json:"samples"`
	RaisedAt int64   `json:"raisedAt"`
}

// opsTask keeps a rolling window of error rates per host.
type opsTask struct {
	sums    map[string]float64
	samples map[string]int
	raised  map[string]bool
}

func (t *opsTask) Init(*liquid.TaskContext) error {
	t.sums = make(map[string]float64)
	t.samples = make(map[string]int)
	t.raised = make(map[string]bool)
	return nil
}

func (t *opsTask) Process(msg liquid.Message, _ *liquid.TaskContext, _ *liquid.Collector) error {
	ev, err := workload.DecodeMetric(msg.Value)
	if err != nil || ev.Name != "errors.rate" {
		return nil
	}
	t.sums[ev.Host] += ev.Value
	t.samples[ev.Host]++
	return nil
}

func (t *opsTask) Window(_ *liquid.TaskContext, out *liquid.Collector) error {
	for host, sum := range t.sums {
		n := t.samples[host]
		if n < 5 {
			continue
		}
		rate := sum / float64(n)
		if rate > 10 && !t.raised[host] {
			t.raised[host] = true
			b, _ := json.Marshal(alert{
				Host: host, Metric: "errors.rate", Rate: rate,
				Samples: n, RaisedAt: time.Now().UnixMilli(),
			})
			if err := out.Send("alerts", []byte(host), b); err != nil {
				return err
			}
		}
	}
	t.sums = make(map[string]float64)
	t.samples = make(map[string]int)
	return nil
}

func main() {
	stack, err := liquid.Start(liquid.Config{Brokers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Shutdown()
	for _, feed := range []string{"metrics", "alerts"} {
		if err := stack.CreateFeed(feed, 2, 1); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := stack.RunJob(liquid.JobConfig{
		Name:           "ops",
		Inputs:         []string{"metrics"},
		Factory:        func() liquid.StreamTask { return &opsTask{} },
		WindowInterval: 200 * time.Millisecond,
		PollWait:       50 * time.Millisecond,
	}); err != nil {
		log.Fatal(err)
	}

	// The fleet reports metrics; host-013 is failing. A new data source
	// (mobile crash reports, say) would just be another producer.
	gen := workload.NewMetrics(workload.MetricsConfig{
		Seed: 99, Hosts: 30, SpikeHost: "host-013",
	}, time.Now().UnixMilli())
	producer := stack.NewProducer(liquid.ProducerConfig{})
	defer producer.Close()
	incidentStart := time.Now()
	go func() {
		for i := 0; ; i++ {
			ev := gen.Next()
			producer.Send(liquid.Message{Topic: "metrics", Key: []byte(ev.Host), Value: ev.Encode()})
			if i%500 == 0 {
				time.Sleep(10 * time.Millisecond)
			}
		}
	}()

	// The on-call dashboard subscribes to alerts.
	consumer := stack.NewConsumer(liquid.ConsumerConfig{})
	defer consumer.Close()
	for p := int32(0); p < 2; p++ {
		consumer.Assign("alerts", p, liquid.StartEarliest)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		msgs, err := consumer.Poll(200 * time.Millisecond)
		if err != nil {
			continue
		}
		for _, m := range msgs {
			var a alert
			if json.Unmarshal(m.Value, &a) != nil {
				continue
			}
			fmt.Printf("ALERT: %s %s=%.1f over %d samples (%.1fs after incident began)\n",
				a.Host, a.Metric, a.Rate, a.Samples, time.Since(incidentStart).Seconds())
			if a.Host == "host-013" {
				fmt.Println("action: drain and reimage host-013")
				return
			}
		}
	}
	log.Fatal("no alert within 30s")
}

// Datacleaning reproduces the paper's "data cleaning and normalization"
// use case (§5.1): user-generated profile updates are cleaned by an
// algorithm that engineers keep improving. Two requirements pull in
// different directions — new content must be cleaned with low latency, and
// when the algorithm changes, history must be re-processed so that all
// data was cleaned by the same code. Liquid serves both: the cleaning job
// runs nearline with annotated checkpoints (version=v1), and when v2
// ships, the job rewinds to the beginning of the feed and reprocesses —
// the derived feed being keyed and compacted, the latest (v2) cleaning
// wins for every profile.
//
// Paper experiment: the rewind mechanics (annotated checkpoints, derived
// compacted feeds) are quantified by E5 (incremental processing) and E13
// (state recovery); compaction of the keyed derived feed is E4.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	liquid "repro"
	"repro/internal/workload"
)

// cleanV1 lower-cases values (the first-generation normalizer).
func cleanV1(v string) string { return strings.ToLower(v) }

// cleanV2 also trims and collapses separators (the improved algorithm).
func cleanV2(v string) string {
	v = strings.ToLower(strings.TrimSpace(v))
	return strings.ReplaceAll(v, "-", " ")
}

// cleaningTask applies a cleaning function and emits keyed results.
type cleaningTask struct {
	version string
	clean   func(string) string
}

func (t cleaningTask) Process(msg liquid.Message, _ *liquid.TaskContext, out *liquid.Collector) error {
	upd, err := workload.DecodeProfile(msg.Value)
	if err != nil {
		return nil
	}
	cleaned := t.clean(upd.Value)
	key := []byte(upd.UserID + "/" + upd.Field)
	value := []byte(t.version + ":" + cleaned)
	return out.Send("profiles-clean", key, value)
}

func main() {
	stack, err := liquid.Start(liquid.Config{Brokers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Shutdown()
	if err := stack.CreateFeed("profile-updates", 2, 1); err != nil {
		log.Fatal(err)
	}
	// The derived feed is keyed and compacted: reprocessing overwrites.
	if err := stack.CreateTopic(liquid.TopicSpec{
		Name: "profiles-clean", NumPartitions: 2, ReplicationFactor: 1, Compacted: true,
	}); err != nil {
		log.Fatal(err)
	}

	// Users generate content.
	gen := workload.NewProfile(workload.ProfileConfig{Seed: 21, Users: 200}, time.Now().UnixMilli())
	producer := stack.NewProducer(liquid.ProducerConfig{})
	defer producer.Close()
	const updates = 400
	for i := 0; i < updates; i++ {
		upd := gen.Next()
		producer.Send(liquid.Message{Topic: "profile-updates", Key: []byte(upd.UserID), Value: upd.Encode()})
	}
	producer.Flush()

	// Phase 1: v1 cleans nearline, checkpointing with version=v1.
	v1, err := stack.RunJob(liquid.JobConfig{
		Name:               "cleaner",
		Inputs:             []string{"profile-updates"},
		Factory:            func() liquid.StreamTask { return cleaningTask{version: "v1", clean: cleanV1} },
		Annotations:        map[string]string{"version": "v1"},
		CheckpointInterval: 100 * time.Millisecond,
		PollWait:           50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	waitProcessed(v1, "cleaner", updates)
	v1.Stop()
	fmt.Printf("v1 cleaned %d updates nearline\n", updates)

	// The offset manager knows exactly where v1 got to (paper §4.2).
	for p := int32(0); p < 2; p++ {
		off, found, err := stack.Client().QueryOffset("job-cleaner", "profile-updates", p, "version", "v1")
		if err != nil || !found {
			log.Fatalf("v1 checkpoint lookup failed: %v", err)
		}
		fmt.Printf("v1 checkpoint: partition %d at offset %d\n", p, off)
	}

	// Phase 2: the algorithm changes. Reprocess everything with v2 by
	// running the job under a new name starting from the earliest offset
	// (the Kappa-style rewind §2.2/§4.2 makes cheap).
	start := time.Now()
	v2, err := stack.RunJob(liquid.JobConfig{
		Name:               "cleaner-v2",
		Inputs:             []string{"profile-updates"},
		Factory:            func() liquid.StreamTask { return cleaningTask{version: "v2", clean: cleanV2} },
		Annotations:        map[string]string{"version": "v2"},
		StartFrom:          liquid.StartEarliest,
		CheckpointInterval: 100 * time.Millisecond,
		PollWait:           50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	waitProcessed(v2, "cleaner-v2", updates)
	v2.Stop()
	fmt.Printf("v2 reprocessed %d updates in %.1fs\n", updates, time.Since(start).Seconds())

	// The compacted derived feed now holds v2 cleanings for every
	// profile field: read it back and verify.
	consumer := stack.NewConsumer(liquid.ConsumerConfig{})
	defer consumer.Close()
	latest := map[string]string{}
	for p := int32(0); p < 2; p++ {
		end, err := stack.Client().ListOffset("profiles-clean", p, -1)
		if err != nil {
			log.Fatal(err)
		}
		consumer.Assign("profiles-clean", p, liquid.StartEarliest)
		for consumer.Position("profiles-clean", p) < end {
			msgs, err := consumer.Poll(300 * time.Millisecond)
			if err != nil {
				continue
			}
			for _, m := range msgs {
				latest[string(m.Key)] = string(m.Value)
			}
		}
		consumer.Unassign("profiles-clean", p)
	}
	v2Count := 0
	for _, v := range latest {
		if strings.HasPrefix(v, "v2:") {
			v2Count++
		}
	}
	fmt.Printf("derived feed: %d profile fields, %d cleaned by v2 (latest algorithm)\n", len(latest), v2Count)
	if v2Count != len(latest) {
		log.Fatalf("%d fields still carry v1 cleanings", len(latest)-v2Count)
	}
	fmt.Println("all data is now cleaned by the same (latest) algorithm")
}

// waitProcessed blocks until a job's processed counter reaches n.
func waitProcessed(job *liquid.Job, name string, n int64) {
	c := job.Metrics().Counter(name + ".processed")
	deadline := time.Now().Add(30 * time.Second)
	for c.Value() < n {
		if time.Now().After(deadline) {
			log.Fatalf("%s processed %d/%d before timeout", name, c.Value(), n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

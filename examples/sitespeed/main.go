// Sitespeed reproduces the paper's "site speed monitoring" use case
// (§5.1): real-user-monitoring events carrying page, region, CDN and load
// time flow into the messaging layer; a processing-layer job groups them
// by CDN and region in tumbling windows and publishes aggregates; an
// anomaly detector consumes the aggregate feed and flags a degraded CDN
// within seconds — instead of the hours a batch pipeline would take.
//
// Paper experiment: this exact use case is benchmarked end to end as E12
// (go run ./cmd/liquid-bench -run E12); the underlying latency claim is E1.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	liquid "repro"
	"repro/internal/workload"
)

// aggKey groups RUM events.
type aggKey struct {
	CDN    string `json:"cdn"`
	Region string `json:"region"`
}

// aggregate is a window's summary for one (CDN, region).
type aggregate struct {
	aggKey
	Count     int64 `json:"count"`
	MeanLoad  int64 `json:"meanLoadMs"`
	WindowEnd int64 `json:"windowEnd"`
}

// rumAggTask accumulates per-(CDN, region) sums and emits them on each
// window boundary.
type rumAggTask struct {
	counts map[aggKey]int64
	sums   map[aggKey]int64
}

func (t *rumAggTask) Init(*liquid.TaskContext) error {
	t.counts = make(map[aggKey]int64)
	t.sums = make(map[aggKey]int64)
	return nil
}

func (t *rumAggTask) Process(msg liquid.Message, _ *liquid.TaskContext, _ *liquid.Collector) error {
	ev, err := workload.DecodeRUM(msg.Value)
	if err != nil {
		return nil // tolerate malformed events; cleaning is upstream
	}
	k := aggKey{CDN: ev.CDN, Region: ev.Region}
	t.counts[k]++
	t.sums[k] += ev.LoadMs
	return nil
}

func (t *rumAggTask) Window(_ *liquid.TaskContext, out *liquid.Collector) error {
	now := time.Now().UnixMilli()
	for k, n := range t.counts {
		agg := aggregate{aggKey: k, Count: n, MeanLoad: t.sums[k] / n, WindowEnd: now}
		b, _ := json.Marshal(agg)
		key, _ := json.Marshal(k)
		if err := out.Send("rum-aggregates", key, b); err != nil {
			return err
		}
	}
	t.counts = make(map[aggKey]int64)
	t.sums = make(map[aggKey]int64)
	return nil
}

func main() {
	stack, err := liquid.Start(liquid.Config{Brokers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Shutdown()
	for _, feed := range []string{"rum-events", "rum-aggregates"} {
		if err := stack.CreateFeed(feed, 2, 1); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := stack.RunJob(liquid.JobConfig{
		Name:           "sitespeed",
		Inputs:         []string{"rum-events"},
		Factory:        func() liquid.StreamTask { return &rumAggTask{} },
		WindowInterval: 300 * time.Millisecond,
		PollWait:       50 * time.Millisecond,
	}); err != nil {
		log.Fatal(err)
	}

	// Front-end servers publish RUM events; cdn-beta is degraded.
	gen := workload.NewRUM(workload.RUMConfig{
		Seed:    42,
		SlowCDN: "cdn-beta",
	}, time.Now().UnixMilli())
	producer := stack.NewProducer(liquid.ProducerConfig{})
	defer producer.Close()
	degradedSince := time.Now()
	go func() {
		for i := 0; ; i++ {
			ev := gen.Next()
			producer.Send(liquid.Message{
				Topic: "rum-events",
				Key:   []byte(ev.SessionID),
				Value: ev.Encode(),
			})
			if i%200 == 0 {
				time.Sleep(10 * time.Millisecond) // ~20k events/s
			}
		}
	}()

	// The back-end anomaly detector consumes pre-aggregated data.
	consumer := stack.NewConsumer(liquid.ConsumerConfig{})
	defer consumer.Close()
	for p := int32(0); p < 2; p++ {
		consumer.Assign("rum-aggregates", p, liquid.StartEarliest)
	}
	baseline := map[string][]int64{} // cdn -> mean samples
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		msgs, err := consumer.Poll(200 * time.Millisecond)
		if err != nil {
			continue
		}
		for _, m := range msgs {
			var agg aggregate
			if json.Unmarshal(m.Value, &agg) != nil {
				continue
			}
			baseline[agg.CDN] = append(baseline[agg.CDN], agg.MeanLoad)
			if agg.MeanLoad > 600 && agg.Count >= 10 {
				fmt.Printf("ANOMALY: %s in %s mean load %dms over %d requests (detected %.1fs after degradation began)\n",
					agg.CDN, agg.Region, agg.MeanLoad, agg.Count,
					time.Since(degradedSince).Seconds())
				fmt.Println("action: reroute traffic away from", agg.CDN)
				summarize(baseline)
				return
			}
		}
	}
	log.Fatal("no anomaly detected within 30s")
}

// summarize prints mean load per CDN so the healthy/degraded contrast is
// visible.
func summarize(baseline map[string][]int64) {
	fmt.Println("per-CDN mean load across windows:")
	for cdn, samples := range baseline {
		var sum int64
		for _, s := range samples {
			sum += s
		}
		fmt.Printf("  %-10s %5dms over %d windows\n", cdn, sum/int64(len(samples)), len(samples))
	}
}

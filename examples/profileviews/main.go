// Profileviews reproduces the paper's motivating serve-side workload
// (§2): "who viewed my profile". Profile-view events stream into a
// queryable table — a compacted feed whose partition leaders materialize
// the latest state per key — and the application answers point reads from
// the same lineage of data the feed carries, with an explicit staleness
// bound instead of a separate bulk-loaded serving store.
//
// Paper experiment: point-read latency and staleness under mixed zipfian
// load are quantified by E22 (go run ./cmd/liquid-bench -run E22).
package main

import (
	"fmt"
	"log"

	liquid "repro"
)

// viewerList is one profile's most recent viewers.
type viewerList struct {
	Viewers []string `json:"viewers"`
	Total   int      `json:"total"`
}

const keepViewers = 3

func main() {
	stack, err := liquid.Start(liquid.Config{Brokers: 2})
	if err != nil {
		log.Fatalf("start stack: %v", err)
	}
	defer stack.Shutdown()

	// A table is a compacted feed with materializing leaders (§2, §3.2).
	if err := stack.CreateTable("profile-views", 4, 2); err != nil {
		log.Fatalf("create table: %v", err)
	}
	tbl := liquid.NewTable(stack.Client(), "profile-views",
		liquid.StringCodec(), liquid.JSONCodec[viewerList]())
	defer tbl.Close()

	// Ingest: each view event updates the viewed profile's entry. In a
	// full deployment a processing-layer job would derive this table from
	// the raw click feed; writing through the typed facade shows the same
	// read-your-writes contract end to end.
	views := []struct{ viewer, viewed string }{
		{"ada", "grace"}, {"linus", "grace"}, {"ada", "linus"},
		{"grace", "ada"}, {"barbara", "grace"}, {"ken", "grace"},
	}
	for _, v := range views {
		cur, _, err := tbl.Get(v.viewed)
		if err != nil {
			log.Fatalf("read %s: %v", v.viewed, err)
		}
		cur.Total++
		cur.Viewers = append(cur.Viewers, v.viewer)
		if len(cur.Viewers) > keepViewers {
			cur.Viewers = cur.Viewers[len(cur.Viewers)-keepViewers:]
		}
		if err := tbl.Put(v.viewed, cur); err != nil {
			log.Fatalf("update %s: %v", v.viewed, err)
		}
		if err := tbl.Flush(); err != nil {
			log.Fatalf("flush: %v", err)
		}
	}

	// Serve: staleness bound 0 demands a fully caught-up view — the read
	// is answered by the partition leader once its materializer has
	// applied every acked write (read-your-acked-writes).
	for _, who := range []string{"grace", "ada", "linus"} {
		v, found, err := tbl.GetWithin(who, 0)
		if err != nil {
			log.Fatalf("get %s: %v", who, err)
		}
		if !found {
			log.Fatalf("profile %s missing", who)
		}
		fmt.Printf("%s was viewed %d times; recent viewers %v\n", who, v.Total, v.Viewers)
	}

	// Freshness is observable per partition: applied offset vs HW.
	sts, err := stack.TableStatus("profile-views")
	if err != nil {
		log.Fatalf("table status: %v", err)
	}
	for _, st := range sts {
		fmt.Printf("partition %d: %d keys, applied %d / hw %d (lag %d)\n",
			st.Partition, st.ApproxLen, st.AppliedOffset, st.HighWatermark, st.Lag())
	}
}

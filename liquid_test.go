package liquid_test

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	liquid "repro"
)

// These tests exercise the public API exactly as a downstream user would:
// only the root package is imported.

func TestPublicAPIProduceConsume(t *testing.T) {
	stack, err := liquid.Start(liquid.Config{Brokers: 1, SessionTimeout: 700 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Shutdown()
	if err := stack.CreateFeed("api-events", 2, 1); err != nil {
		t.Fatal(err)
	}
	p := stack.NewProducer(liquid.ProducerConfig{Acks: liquid.AcksLeader})
	defer p.Close()
	for i := 0; i < 20; i++ {
		if err := p.Send(liquid.Message{
			Topic: "api-events",
			Key:   []byte(fmt.Sprintf("k%d", i%4)),
			Value: []byte(fmt.Sprintf("v%d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	c := stack.NewConsumer(liquid.ConsumerConfig{})
	defer c.Close()
	c.Assign("api-events", 0, liquid.StartEarliest)
	c.Assign("api-events", 1, liquid.StartEarliest)
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < 20 && time.Now().Before(deadline) {
		msgs, err := c.Poll(200 * time.Millisecond)
		if err != nil {
			continue
		}
		got += len(msgs)
	}
	if got != 20 {
		t.Fatalf("consumed %d/20", got)
	}
}

// wordLenTask maps each value to its length on a derived feed.
type wordLenTask struct{}

func (wordLenTask) Process(msg liquid.Message, ctx *liquid.TaskContext, out *liquid.Collector) error {
	store := ctx.Store("lens")
	if err := store.Put(msg.Value, []byte(strconv.Itoa(len(msg.Value)))); err != nil {
		return err
	}
	return out.Send("api-lens", msg.Value, []byte(strconv.Itoa(len(msg.Value))))
}

func TestPublicAPIStatefulJob(t *testing.T) {
	stack, err := liquid.Start(liquid.Config{Brokers: 1, SessionTimeout: 700 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Shutdown()
	stack.CreateFeed("api-words", 1, 1)
	stack.CreateFeed("api-lens", 1, 1)
	job, err := stack.RunJob(liquid.JobConfig{
		Name:        "lens",
		Inputs:      []string{"api-words"},
		Factory:     func() liquid.StreamTask { return wordLenTask{} },
		Stores:      []liquid.StoreSpec{{Name: "lens"}},
		Annotations: map[string]string{"version": "v1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := stack.NewProducer(liquid.ProducerConfig{})
	defer p.Close()
	words := []string{"a", "bb", "ccc"}
	for _, w := range words {
		if _, err := p.SendSync(liquid.Message{Topic: "api-words", Value: []byte(w)}); err != nil {
			t.Fatal(err)
		}
	}
	c := stack.NewConsumer(liquid.ConsumerConfig{})
	defer c.Close()
	c.Assign("api-lens", 0, liquid.StartEarliest)
	got := map[string]string{}
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < len(words) && time.Now().Before(deadline) {
		msgs, err := c.Poll(200 * time.Millisecond)
		if err != nil {
			continue
		}
		for _, m := range msgs {
			got[string(m.Key)] = string(m.Value)
		}
	}
	if got["a"] != "1" || got["bb"] != "2" || got["ccc"] != "3" {
		t.Fatalf("derived feed = %v", got)
	}
	if job.Metrics().Counter("lens.processed").Value() < 3 {
		t.Fatal("processed counter missing")
	}
}

func TestPublicAPIGovernor(t *testing.T) {
	g := liquid.NewGovernor(liquid.GovernorConfig{CPUShare: 0.5})
	g.Charge(time.Millisecond)
	if g.Usage().CPUCharged != time.Millisecond {
		t.Fatal("governor accounting broken through the facade")
	}
}

func TestPublicAPIArchiveAndBackfill(t *testing.T) {
	stack, err := liquid.Start(liquid.Config{Brokers: 1, SessionTimeout: 700 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Shutdown()
	stack.CreateFeed("api-arch", 1, 1)
	stack.CreateFeed("api-arch-replay", 1, 1)
	p := stack.NewProducer(liquid.ProducerConfig{})
	for i := 0; i < 10; i++ {
		if err := p.Send(liquid.Message{Topic: "api-arch", Value: []byte(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	p.Close()

	snap, err := stack.ArchiveSnapshot(liquid.SnapshotConfig{Topic: "api-arch"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Records != 10 {
		t.Fatalf("archived %d records, want 10", snap.Records)
	}
	fs, err := stack.ArchiveFS()
	if err != nil {
		t.Fatal(err)
	}
	manifests, err := liquid.ArchiveManifests(fs, "/archive", "api-arch")
	if err != nil || len(manifests) != 1 || manifests[0].NextOffset != 10 {
		t.Fatalf("manifests = %v, %v", manifests, err)
	}

	bf, err := stack.Backfill(liquid.BackfillConfig{
		SourceTopic:        "api-arch",
		TargetTopic:        "api-arch-replay",
		PreservePartitions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bf.Records != 10 {
		t.Fatalf("backfilled %d records, want 10", bf.Records)
	}
	c := stack.NewConsumer(liquid.ConsumerConfig{})
	defer c.Close()
	c.Assign("api-arch-replay", 0, liquid.StartEarliest)
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < 10 && time.Now().Before(deadline) {
		msgs, err := c.Poll(200 * time.Millisecond)
		if err != nil {
			continue
		}
		got += len(msgs)
	}
	if got != 10 {
		t.Fatalf("replayed feed delivered %d/10", got)
	}
}

func TestPublicAPIAnnotations(t *testing.T) {
	s := liquid.EncodeAnnotations(map[string]string{"version": "v9"})
	if liquid.DecodeAnnotations(s)["version"] != "v9" {
		t.Fatal("annotation codec broken through the facade")
	}
}

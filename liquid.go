// Package liquid is a from-scratch Go implementation of Liquid, the
// nearline data integration stack described in "Liquid: Unifying Nearline
// and Offline Big Data Integration" (Castro Fernandez et al., CIDR 2015).
//
// Liquid has two cooperating layers:
//
//   - a messaging layer — a distributed, highly available topic-based
//     publish/subscribe system built on partitioned, replicated,
//     append-only commit logs, with offset-based pull consumption,
//     consumer groups, per-topic retention, key-based log compaction, and
//     an offset manager that stores checkpoints with arbitrary metadata
//     annotations for rewindability;
//
//   - a processing layer — stateful stream processing jobs (one task per
//     input partition) with explicit local state backed by changelog
//     feeds, periodic annotated checkpoints enabling incremental
//     processing, windowed computation, and per-job resource isolation
//     ("ETL-as-a-service").
//
// An archival bridge unifies this nearline stack with the offline one
// (paper §1, §3): Stack.StartArchiver / Stack.ArchiveSnapshot export feed
// partitions into immutable, manifest-tracked segment files on the DFS,
// checkpointing progress through the offset manager with offset↔segment
// annotations; MapReduce jobs run directly over the archived segments
// (archive.MRInput); and Stack.Backfill republishes archived segments into
// a feed at a bounded rate for rewind beyond the retention window.
//
// # Quickstart
//
//	stack, err := liquid.Start(liquid.Config{Brokers: 1})
//	if err != nil { log.Fatal(err) }
//	defer stack.Shutdown()
//
//	stack.CreateFeed("events", 4, 1)
//	p := stack.NewProducer(liquid.ProducerConfig{})
//	p.SendSync(liquid.Message{Topic: "events", Key: []byte("user-1"), Value: []byte("hello")})
//
//	c := stack.NewConsumer(liquid.ConsumerConfig{})
//	c.Assign("events", 0, liquid.StartEarliest)
//	msgs, _ := c.Poll(time.Second)
//
// Record batches may be compressed end to end (ProducerConfig.Codec,
// gzip/flate): the producer seals each flushed batch once, brokers store,
// replicate and serve the exact bytes, and only the final reader
// decompresses — see docs/ARCHITECTURE.md for where compression sits in
// the produce→log→fetch→job→archive path.
//
// Stateful jobs implement StreamTask and are launched with Stack.RunJob;
// see the examples directory for full applications (site-speed monitoring,
// call-graph assembly, data cleaning with rewind, operational analytics).
package liquid

import (
	"repro/internal/archive"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dfs"
	"repro/internal/isolation"
	"repro/internal/mapreduce"
	"repro/internal/processing"
	"repro/internal/state"
	"repro/internal/storage/record"
	"repro/internal/table"
	"repro/internal/tier"
	"repro/internal/wire"
)

// Stack is a running Liquid deployment: coordination service, brokers and
// job runtime.
type Stack = core.Stack

// Config sizes a Liquid stack.
type Config = core.Config

// Start boots a Liquid stack.
func Start(cfg Config) (*Stack, error) { return core.Start(cfg) }

// Messaging-layer client types.
type (
	// Client is a cluster-aware messaging-layer client.
	Client = client.Client
	// ClientConfig parameterises a Client.
	ClientConfig = client.Config
	// Message is a produced or consumed message.
	Message = client.Message
	// Header is a message annotation (lineage, tracing, ...).
	Header = record.Header
	// Producer batches and publishes messages to partition leaders.
	Producer = client.Producer
	// ProducerConfig parameterises a Producer.
	ProducerConfig = client.ProducerConfig
	// Consumer pulls from explicitly assigned partitions.
	Consumer = client.Consumer
	// ConsumerConfig parameterises a Consumer.
	ConsumerConfig = client.ConsumerConfig
	// GroupConsumer participates in a consumer group.
	GroupConsumer = client.GroupConsumer
	// GroupConfig parameterises a GroupConsumer.
	GroupConfig = client.GroupConfig
	// TopicSpec configures a new feed.
	TopicSpec = wire.TopicSpec
	// Partitioner routes produced messages to partitions.
	Partitioner = client.Partitioner
	// Codec selects wire/storage compression for produced batches
	// (ProducerConfig.Codec): brokers store and replicate compressed
	// batches verbatim; consumers decompress transparently.
	Codec = client.Codec
	// QuotaConfig is one principal's (client-id's) rate quota, persisted
	// in the coordination service (Stack.SetQuota / Config.DefaultQuota):
	// brokers enforce it in their produce/fetch/request paths and answer
	// violations with ThrottleTimeMs backpressure that producers and
	// consumers honor (§3.2/§4.4 multi-tenancy).
	QuotaConfig = cluster.QuotaConfig
	// QuotaEntry is a QuotaConfig bound to its principal, as carried by
	// the quota admin APIs (Client.SetQuota / DescribeQuotas).
	QuotaEntry = wire.QuotaEntry
	// ThrottleStats reports how often (and for how long) a producer or
	// consumer delayed requests to honor broker quota verdicts.
	ThrottleStats = client.ThrottleStats
)

// ParseCodec maps a configuration string ("none", "gzip", "flate") to a
// Codec.
func ParseCodec(s string) (Codec, error) { return client.ParseCodec(s) }

// Producer batch codecs.
const (
	// CodecNone sends batches uncompressed (the default).
	CodecNone = client.CodecNone
	// CodecGzip compresses each flushed batch with gzip.
	CodecGzip = client.CodecGzip
	// CodecFlate compresses each flushed batch with raw DEFLATE.
	CodecFlate = client.CodecFlate
)

// NewClient creates a standalone messaging-layer client.
func NewClient(cfg ClientConfig) (*Client, error) { return client.New(cfg) }

// NewProducer creates a producer on a client.
func NewProducer(c *Client, cfg ProducerConfig) *Producer { return client.NewProducer(c, cfg) }

// NewConsumer creates a partition consumer on a client.
func NewConsumer(c *Client, cfg ConsumerConfig) *Consumer { return client.NewConsumer(c, cfg) }

// NewGroupConsumer creates a group consumer on a client.
func NewGroupConsumer(c *Client, ccfg ConsumerConfig, gcfg GroupConfig) (*GroupConsumer, error) {
	return client.NewGroupConsumer(c, ccfg, gcfg)
}

// Producer durability levels (paper §4.3).
const (
	// AcksNone is fire-and-forget: minimum durability, minimum latency.
	AcksNone = client.AcksNone
	// AcksLeader acknowledges after the leader's append.
	AcksLeader int16 = 1
	// AcksAll acknowledges after the full in-sync replica set has the
	// data: maximum durability.
	AcksAll = client.AcksAll
)

// Consumer start positions.
const (
	// StartEarliest begins at the oldest retained offset.
	StartEarliest = client.StartEarliest
	// StartLatest begins at the log end (new data only).
	StartLatest = client.StartLatest
)

// Processing-layer types.
type (
	// Job is a running processing-layer job.
	Job = processing.Job
	// JobConfig declares a processing-layer job.
	JobConfig = processing.JobConfig
	// StreamTask is a job's per-message processing logic.
	StreamTask = processing.StreamTask
	// InitableTask optionally initialises with the task context.
	InitableTask = processing.InitableTask
	// WindowedTask optionally receives periodic Window calls.
	WindowedTask = processing.WindowedTask
	// ClosableTask optionally tears down on shutdown.
	ClosableTask = processing.ClosableTask
	// TaskFactory builds one StreamTask per partition.
	TaskFactory = processing.TaskFactory
	// TaskContext is a task's runtime environment.
	TaskContext = processing.TaskContext
	// Collector emits messages to derived feeds.
	Collector = processing.Collector
	// StoreSpec declares a job-local state store.
	StoreSpec = processing.StoreSpec
	// Store is keyed local state.
	Store = state.Store
	// Governor bounds a job's resources (ETL-as-a-service).
	Governor = isolation.Governor
	// GovernorConfig parameterises a Governor.
	GovernorConfig = isolation.Config
)

// Dataflow graph types (paper §3.2: jobs form dataflow processing graphs
// decoupled by feeds).
type (
	// Graph declares a multi-job dataflow (feeds + nodes).
	Graph = dataflow.Graph
	// Feed declares one topic in a Graph.
	Feed = dataflow.Feed
	// Node declares one job and its output feeds in a Graph.
	Node = dataflow.Node
	// Running is a started dataflow graph.
	Running = dataflow.Running
)

// BuildGraph validates a dataflow graph, creates its feeds and starts its
// jobs in topological order on the stack.
func BuildGraph(s *Stack, g Graph) (*Running, error) { return dataflow.Build(s, g) }

// NewJob builds (but does not start) a processing job on a client.
func NewJob(c *Client, cfg JobConfig) (*Job, error) { return processing.NewJob(c, cfg) }

// NewGovernor creates a resource governor for a job.
func NewGovernor(cfg GovernorConfig) *Governor { return isolation.New(cfg) }

// Archival-bridge types (feed→DFS export, offline consumption, backfill).
type (
	// Archiver continuously exports a feed into manifest-tracked DFS
	// segments via a consumer group.
	Archiver = archive.Archiver
	// ArchiverConfig parameterises an Archiver.
	ArchiverConfig = archive.ArchiverConfig
	// ArchiverStats summarises an archiver's progress.
	ArchiverStats = archive.ArchiverStats
	// SnapshotConfig parameterises a one-shot archive export.
	SnapshotConfig = archive.SnapshotConfig
	// SnapshotStats summarises a snapshot run.
	SnapshotStats = archive.SnapshotStats
	// BackfillConfig parameterises a replay of archived segments into a
	// feed.
	BackfillConfig = archive.BackfillConfig
	// BackfillStats summarises a backfill run.
	BackfillStats = archive.BackfillStats
	// ArchiveManifest is the committed state of one archived partition.
	ArchiveManifest = archive.Manifest
	// ArchiveSegmentInfo describes one committed segment.
	ArchiveSegmentInfo = archive.SegmentInfo
	// ArchiveFS is the DFS the archive tree lives on.
	ArchiveFS = dfs.FS
)

// NewArchiver creates a standalone archiver on a client (not yet running);
// prefer Stack.StartArchiver inside one process.
func NewArchiver(c *Client, cfg ArchiverConfig) (*Archiver, error) {
	return archive.NewArchiver(c, cfg)
}

// ArchiveSnapshot archives a feed up to its current end offsets through a
// standalone client.
func ArchiveSnapshot(c *Client, cfg SnapshotConfig) (SnapshotStats, error) {
	return archive.Snapshot(c, cfg)
}

// Backfill republishes archived segments into a feed through a standalone
// client.
func Backfill(c *Client, cfg BackfillConfig) (BackfillStats, error) {
	return archive.Backfill(c, cfg)
}

// OpenArchiveFS opens (or creates) an archive file system rooted at a local
// directory, for standalone archiver processes. The directory is locked
// exclusively while open; use OpenArchiveFSReadOnly for concurrent readers.
func OpenArchiveFS(dir string) (*ArchiveFS, error) {
	return dfs.Open(dfs.Config{Dir: dir})
}

// OpenArchiveFSReadOnly opens a lock-free read-only view of an archive
// directory — it can coexist with a live archiver and sees the committed
// namespace as of the open. Backfills and offline scans use it.
func OpenArchiveFSReadOnly(dir string) (*ArchiveFS, error) {
	return dfs.Open(dfs.Config{Dir: dir, ReadOnly: true})
}

// ArchiveManifests loads the newest manifest of every archived partition of
// a topic.
func ArchiveManifests(fs *ArchiveFS, root, topic string) ([]*ArchiveManifest, error) {
	return archive.ListManifests(fs, root, topic)
}

// ArchiveMRInput resolves an archived feed into MapReduce job inputs: the
// committed segment files plus their decoder, for
// mapreduce.JobSpec.InputFiles / Decode.
func ArchiveMRInput(fs *ArchiveFS, root, topic string) ([]string, func([]byte) ([]mapreduce.KV, error), error) {
	return archive.MRInput(fs, root, topic)
}

// EncodeAnnotations marshals checkpoint annotations into offset-manager
// metadata; DecodeAnnotations reverses it.
func EncodeAnnotations(a map[string]string) string { return client.EncodeAnnotations(a) }

// DecodeAnnotations parses offset-manager metadata into annotations.
func DecodeAnnotations(s string) map[string]string { return client.DecodeAnnotations(s) }

// Tiered log storage (internal/tier): topics created with
// TopicSpec.Tiered (or Stack.CreateTieredFeed) keep a small hot log on the
// brokers and offload sealed segments to the DFS; consumers rewind past
// local retention through the same fetch API — StartEarliest and
// ResetEarliest mean the tiered-earliest offset.
type (
	// TierStatusPartition is one partition's tiered-storage status
	// (Client.TierStatus / Stack.TierStatus): hot/cold segment counts,
	// tiered bytes, and the local vs tiered start offsets.
	TierStatusPartition = wire.TierStatusPartition
	// TierManifest is the committed cold-tier state of one partition.
	TierManifest = tier.Manifest
	// TierSegmentInfo describes one committed cold segment.
	TierSegmentInfo = tier.SegmentInfo
)

// TierManifests loads the newest tier manifest of every partition of a
// topic directly from a tier DFS (cmd/liquid-admin reads a broker's tier
// directory this way; online status goes through Client.TierStatus).
func TierManifests(fs *dfs.FS, root, topic string, partitions int32) ([]*TierManifest, error) {
	out := make([]*TierManifest, 0, partitions)
	for p := int32(0); p < partitions; p++ {
		m, err := tier.LoadManifest(fs, root, topic, p)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Queryable tables (internal/table): a topic created with TopicSpec.Table
// (or Stack.CreateTable) is a compacted feed whose partition leaders
// materialize the log into key→value views and serve point reads and range
// scans — the paper's serve-side read workloads (§2, §3.2) off the same
// lineage of data the feed carries.
//
//	stack.CreateTable("profiles", 4, 2)
//	tbl := liquid.NewTable(stack.Client(), "profiles",
//		liquid.StringCodec(), liquid.JSONCodec[Profile]())
//	tbl.Put("user-1", Profile{Name: "Ada"})
//	tbl.Flush()
//	p, ok, err := tbl.GetWithin("user-1", 0) // read-your-acked-writes
type (
	// Table is the typed facade over a queryable feed: Put/Delete write
	// through a keyed producer, Get/GetWithin read from the partition
	// leader's materialized view with a staleness bound.
	Table[K any, V any] = table.Table[K, V]
	// TableCodec converts typed keys/values to their feed representation.
	TableCodec[T any] = table.Codec[T]
	// TableRouter is the untyped read router (Stack.Table): keys hash to
	// partitions with the producer's partitioner, reads go to the broker
	// materializing each partition, with retry-on-move.
	TableRouter = table.Router
	// TableGetResult is one point read: value plus the freshness
	// watermark (applied offset vs high watermark) it was served at.
	TableGetResult = client.TableGetResult
	// TableRangeResult is one range scan over a partition's view.
	TableRangeResult = client.TableRangeResult
	// TableStatusPartition is one partition's materializer freshness
	// (Client.TableStatus / Stack.TableStatus).
	TableStatusPartition = client.TableStatusPartition
	// TableEntry is one key→value pair in a range result.
	TableEntry = wire.TableEntry
)

// NewTable returns a typed table over a topic created with TopicSpec.Table.
func NewTable[K any, V any](c *Client, topic string, kc TableCodec[K], vc TableCodec[V]) *Table[K, V] {
	return table.New(c, topic, kc, vc)
}

// NewTableRouter returns the untyped read router for a table topic.
func NewTableRouter(c *Client, topic string) *TableRouter {
	return table.NewRouter(c, topic)
}

// StringCodec stores strings as raw UTF-8 bytes.
func StringCodec() TableCodec[string] { return table.StringCodec() }

// BytesCodec stores byte slices verbatim.
func BytesCodec() TableCodec[[]byte] { return table.BytesCodec() }

// JSONCodec stores values as JSON.
func JSONCodec[T any]() TableCodec[T] { return table.JSONCodec[T]() }

// TableHashKey returns the partition a table key routes to (the producer's
// FNV-1a keyed partitioner).
func TableHashKey(key []byte, numPartitions int32) int32 {
	return table.HashKey(key, numPartitions)
}

// Benchmarks wrapping the experiment harness: one benchmark per experiment
// (E1–E20, E22, E24, E25), so `go test -bench=.` regenerates every table at quick scale.
// Run cmd/liquid-bench for the full-scale tables and the machine-readable
// BENCH_<exp>.json results.
package liquid_test

import (
	"testing"

	"repro/internal/bench"
)

// runExperiment executes one experiment per benchmark iteration and logs
// its table on the last iteration.
func runExperiment(b *testing.B, f func(bench.Scale) bench.Table) {
	b.Helper()
	scale := bench.Scale{Quick: true}
	for i := 0; i < b.N; i++ {
		t := f(scale)
		if i == b.N-1 {
			b.Logf("\n%s", t.Render())
		}
	}
}

func BenchmarkE1PipelineLatency(b *testing.B)      { runExperiment(b, bench.E1PipelineLatency) }
func BenchmarkE2ThroughputVsLogSize(b *testing.B)  { runExperiment(b, bench.E2ThroughputVsLogSize) }
func BenchmarkE3AntiCaching(b *testing.B)          { runExperiment(b, bench.E3AntiCaching) }
func BenchmarkE4Compaction(b *testing.B)           { runExperiment(b, bench.E4Compaction) }
func BenchmarkE5Incremental(b *testing.B)          { runExperiment(b, bench.E5Incremental) }
func BenchmarkE6Failover(b *testing.B)             { runExperiment(b, bench.E6Failover) }
func BenchmarkE7AcksTradeoff(b *testing.B)         { runExperiment(b, bench.E7AcksTradeoff) }
func BenchmarkE8Isolation(b *testing.B)            { runExperiment(b, bench.E8Isolation) }
func BenchmarkE9ConsumerGroups(b *testing.B)       { runExperiment(b, bench.E9ConsumerGroups) }
func BenchmarkE10Decoupling(b *testing.B)          { runExperiment(b, bench.E10Decoupling) }
func BenchmarkE11ManyTopics(b *testing.B)          { runExperiment(b, bench.E11ManyTopics) }
func BenchmarkE12UseCases(b *testing.B)            { runExperiment(b, bench.E12UseCases) }
func BenchmarkE13StateRecovery(b *testing.B)       { runExperiment(b, bench.E13StateRecovery) }
func BenchmarkE14ArchiveExport(b *testing.B)       { runExperiment(b, bench.E14ArchiveExport) }
func BenchmarkE15ArchiveScan(b *testing.B)         { runExperiment(b, bench.E15ArchiveScan) }
func BenchmarkE16Compression(b *testing.B)         { runExperiment(b, bench.E16Compression) }
func BenchmarkE17Availability(b *testing.B)        { runExperiment(b, bench.E17Availability) }
func BenchmarkE18RewindScan(b *testing.B)          { runExperiment(b, bench.E18RewindScan) }
func BenchmarkE19NoisyNeighbor(b *testing.B)       { runExperiment(b, bench.E19NoisyNeighbor) }
func BenchmarkE20Durability(b *testing.B)          { runExperiment(b, bench.E20Durability) }
func BenchmarkE22TableReads(b *testing.B)          { runExperiment(b, bench.E22TableReads) }
func BenchmarkE24IdempotenceOverhead(b *testing.B) { runExperiment(b, bench.E24IdempotenceOverhead) }
func BenchmarkE25ObservabilityOverhead(b *testing.B) {
	runExperiment(b, bench.E25ObservabilityOverhead)
}
